// Round-trip and facade tests for the `.cmdb` binary columnar format and
// the storage::OpenDatabase entry point. The load path is zero-copy —
// relations borrow column spans straight out of the mapping — so beyond
// value equality these tests pin copy-on-write mutation semantics and the
// golden byte-identity guarantee: a model trained from a `.cmdb` database
// is byte-for-byte the model trained from the same database loaded any
// other way.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/model_io.h"
#include "datagen/synthetic.h"
#include "storage/storage.h"
#include "test_util.h"

#ifndef CROSSMINE_SOURCE_DIR
#error "columnar_test needs CROSSMINE_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace crossmine {
namespace {

using testing::MakeFig2Database;
using testing::MakeRandomDatabase;

std::string TempPath(const char* stem) {
  const std::string name =
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  std::string path = ::testing::TempDir() + "/columnar_" + name + "_" + stem;
  std::filesystem::remove_all(path);
  return path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Full value-level equality of two databases: schemas, cells,
/// dictionaries, labels, and the derived join graph.
void ExpectSameDatabase(const Database& a, const Database& b) {
  ASSERT_EQ(a.num_relations(), b.num_relations());
  EXPECT_EQ(a.target(), b.target());
  EXPECT_EQ(a.num_classes(), b.num_classes());
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_EQ(a.edges().size(), b.edges().size());
  EXPECT_EQ(SchemaFingerprint(a), SchemaFingerprint(b));
  for (RelId r = 0; r < a.num_relations(); ++r) {
    const Relation& ra = a.relation(r);
    const Relation& rb = b.relation(r);
    EXPECT_EQ(ra.name(), rb.name());
    ASSERT_EQ(ra.schema().num_attrs(), rb.schema().num_attrs());
    ASSERT_EQ(ra.num_tuples(), rb.num_tuples());
    for (AttrId at = 0; at < ra.schema().num_attrs(); ++at) {
      EXPECT_EQ(ra.schema().attr(at).name, rb.schema().attr(at).name);
      EXPECT_EQ(ra.schema().attr(at).kind, rb.schema().attr(at).kind);
      EXPECT_EQ(ra.Dictionary(at), rb.Dictionary(at));
      for (TupleId t = 0; t < ra.num_tuples(); ++t) {
        if (ra.schema().IsIntAttr(at)) {
          EXPECT_EQ(ra.Int(t, at), rb.Int(t, at)) << r << "/" << at << "/" << t;
        } else {
          EXPECT_EQ(ra.Double(t, at), rb.Double(t, at))
              << r << "/" << at << "/" << t;
        }
      }
    }
  }
}

TEST(ColumnarTest, RoundTripsFig2Database) {
  testing::Fig2Database fig = MakeFig2Database();
  std::string path = TempPath("fig2.cmdb");
  ASSERT_TRUE(storage::SaveDatabaseColumnar(fig.db, path).ok());

  StatusOr<Database> loaded = storage::OpenDatabaseColumnar(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->finalized());
  ExpectSameDatabase(fig.db, *loaded);
  // Dictionary strings survive, not just codes.
  EXPECT_EQ(loaded->relation(fig.account).CategoryName(fig.account_frequency,
                                                       fig.monthly),
            "monthly");
}

TEST(ColumnarTest, RoundTripsRandomDatabases) {
  // MakeRandomDatabase deliberately leaves dangling / NULL foreign keys:
  // the columnar loader must take them verbatim (convert-time validation is
  // trusted; the crc is the integrity boundary), unlike the CSV loader
  // which would reject them.
  for (uint64_t seed : {1u, 7u, 23u, 99u}) {
    Database db = MakeRandomDatabase(seed, /*num_relations=*/4,
                                     /*max_tuples=*/40);
    std::string path =
        TempPath(("rand" + std::to_string(seed) + ".cmdb").c_str());
    ASSERT_TRUE(storage::SaveDatabaseColumnar(db, path).ok());
    StatusOr<Database> loaded = storage::OpenDatabaseColumnar(path);
    ASSERT_TRUE(loaded.ok()) << "seed " << seed << ": "
                             << loaded.status().ToString();
    ExpectSameDatabase(db, *loaded);
  }
}

TEST(ColumnarTest, RoundTripsWithChecksumVerificationOff) {
  testing::Fig2Database fig = MakeFig2Database();
  std::string path = TempPath("noverify.cmdb");
  ASSERT_TRUE(storage::SaveDatabaseColumnar(fig.db, path).ok());
  storage::ColumnarOpenOptions options;
  options.verify_checksums = false;
  StatusOr<Database> loaded = storage::OpenDatabaseColumnar(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDatabase(fig.db, *loaded);
}

TEST(ColumnarTest, MutationAfterOpenCopiesOnWrite) {
  testing::Fig2Database fig = MakeFig2Database();
  std::string path = TempPath("cow.cmdb");
  ASSERT_TRUE(storage::SaveDatabaseColumnar(fig.db, path).ok());
  StatusOr<Database> loaded = storage::OpenDatabaseColumnar(path);
  ASSERT_TRUE(loaded.ok());

  // Mutate a borrowed cell and append a row: both must materialize the
  // touched columns without writing through to the file.
  Relation& loan = loaded->mutable_relation(fig.loan);
  ASSERT_TRUE(loan.IntColumn(fig.loan_account).borrowed());
  loan.SetInt(0, fig.loan_account, 3);
  EXPECT_FALSE(loan.IntColumn(fig.loan_account).borrowed());
  EXPECT_EQ(loan.Int(0, fig.loan_account), 3);
  TupleId t = loan.AddTuple();
  loan.SetInt(t, 0, 99);
  EXPECT_EQ(loan.num_tuples(), fig.db.relation(fig.loan).num_tuples() + 1);

  // Untouched columns still borrow from the mapping.
  EXPECT_EQ(loan.Double(1, fig.loan_amount),
            fig.db.relation(fig.loan).Double(1, fig.loan_amount));

  // The file is unchanged: a fresh open sees the original data.
  StatusOr<Database> again = storage::OpenDatabaseColumnar(path);
  ASSERT_TRUE(again.ok());
  ExpectSameDatabase(fig.db, *again);
}

TEST(ColumnarTest, LoadedDatabaseOutlivesTrainingAndIndexBuilds) {
  // Index construction and training walk borrowed columns heavily; the
  // Database must keep the mapping alive without any caller bookkeeping.
  Database db = MakeRandomDatabase(3, /*num_relations=*/3, /*max_tuples=*/25);
  std::string path = TempPath("train.cmdb");
  ASSERT_TRUE(storage::SaveDatabaseColumnar(db, path).ok());
  StatusOr<Database> loaded = storage::OpenDatabaseColumnar(path);
  ASSERT_TRUE(loaded.ok());

  CrossMineClassifier model{CrossMineOptions{}};
  std::vector<TupleId> all(loaded->target_relation().num_tuples());
  std::iota(all.begin(), all.end(), 0);
  EXPECT_TRUE(model.Train(*loaded, all).ok());
}

TEST(ColumnarTest, InfoReportsSchemaAndSegmentSizes) {
  testing::Fig2Database fig = MakeFig2Database();
  std::string path = TempPath("info.cmdb");
  ASSERT_TRUE(storage::SaveDatabaseColumnar(fig.db, path).ok());

  StatusOr<storage::ColumnarInfo> info = storage::ReadColumnarInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->fingerprint, SchemaFingerprint(fig.db));
  EXPECT_EQ(info->num_classes, 2);
  EXPECT_EQ(info->labels_bytes, 5 * sizeof(ClassId));
  ASSERT_EQ(info->relations.size(), 2u);
  EXPECT_EQ(info->relations[0].name, "Account");
  EXPECT_EQ(info->relations[0].tuples, 4u);
  EXPECT_FALSE(info->relations[0].is_target);
  EXPECT_EQ(info->relations[1].name, "Loan");
  EXPECT_TRUE(info->relations[1].is_target);
  // Account: account_id pk, frequency cat (+ 2-entry dict), date num.
  const storage::ColumnarRelationInfo& account = info->relations[0];
  ASSERT_EQ(account.attrs.size(), 3u);
  EXPECT_EQ(account.attrs[0].kind, "pk");
  EXPECT_EQ(account.attrs[0].column_bytes, 4 * sizeof(int64_t));
  EXPECT_EQ(account.attrs[1].dict_count, 2u);
  EXPECT_EQ(info->file_bytes, std::filesystem::file_size(path));
}

TEST(ColumnarTest, FacadeSniffsBothFormats) {
  testing::Fig2Database fig = MakeFig2Database();
  std::string csv_dir = TempPath("csv");
  std::string cmdb = TempPath("db.cmdb");
  ASSERT_TRUE(storage::SaveDatabase(fig.db, csv_dir).ok());
  ASSERT_TRUE(storage::SaveDatabase(fig.db, cmdb).ok());

  StatusOr<storage::Format> csv_format = storage::SniffFormat(csv_dir);
  ASSERT_TRUE(csv_format.ok());
  EXPECT_EQ(*csv_format, storage::Format::kCsvDir);
  StatusOr<storage::Format> cmdb_format = storage::SniffFormat(cmdb);
  ASSERT_TRUE(cmdb_format.ok());
  EXPECT_EQ(*cmdb_format, storage::Format::kColumnar);

  StatusOr<Database> from_csv = storage::OpenDatabase(csv_dir);
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();
  StatusOr<Database> from_cmdb = storage::OpenDatabase(cmdb);
  ASSERT_TRUE(from_cmdb.ok()) << from_cmdb.status().ToString();
  ExpectSameDatabase(*from_csv, *from_cmdb);

  EXPECT_EQ(storage::SniffFormat(csv_dir + "_missing").status().code(),
            StatusCode::kNotFound);
  std::string junk = TempPath("junk.bin");
  std::ofstream(junk, std::ios::binary) << "definitely not a database";
  EXPECT_EQ(storage::SniffFormat(junk).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Golden byte-identity: the reason the format can replace CSV everywhere.

std::string NormalizeToV1(std::string bytes) {
  const std::string v2_header = "crossmine-model 2\n";
  if (bytes.rfind(v2_header, 0) == 0) {
    bytes.replace(0, v2_header.size(), "crossmine-model 1\n");
  }
  size_t tpos = bytes.rfind("\nchecksum ");
  if (tpos != std::string::npos && bytes.back() == '\n') {
    bytes.erase(tpos + 1);
  }
  return bytes;
}

std::string TrainedModelBytes(const Database& db, const char* tag) {
  CrossMineClassifier model{CrossMineOptions{}};
  std::vector<TupleId> all(db.target_relation().num_tuples());
  std::iota(all.begin(), all.end(), 0);
  EXPECT_TRUE(model.Train(db, all).ok());
  std::string path = ::testing::TempDir() + "/columnar_model_" + tag + ".cmm";
  std::filesystem::remove(path);
  EXPECT_TRUE(SaveModel(model, db, path).ok());
  return NormalizeToV1(ReadFile(path));
}

TEST(ColumnarGoldenTest, CmdbTrainingMatchesCommittedGolden) {
  // Convert the golden generator config to `.cmdb`, open it, train: the
  // model must be byte-identical to the committed pre-refactor golden —
  // the storage format is invisible to training.
  datagen::SyntheticConfig cfg;
  cfg.num_relations = 8;
  cfg.expected_tuples = 150;
  cfg.seed = 17;
  StatusOr<Database> db = datagen::GenerateSyntheticDatabase(cfg);
  ASSERT_TRUE(db.ok());

  std::string path = TempPath("golden.cmdb");
  ASSERT_TRUE(storage::SaveDatabaseColumnar(*db, path).ok());
  StatusOr<Database> loaded = storage::OpenDatabaseColumnar(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  std::string golden = ReadFile(std::string(CROSSMINE_SOURCE_DIR) +
                                "/tests/golden/synthetic_r8_t150_s17.cmm");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(TrainedModelBytes(*loaded, "cmdb"), golden)
      << "training from .cmdb diverged from the committed golden";
}

TEST(ColumnarGoldenTest, CsvConvertOpenTrainingMatchesCsvTraining) {
  // The full convert pipeline: CSV dir -> load -> convert -> open. Models
  // trained from the CSV-loaded and the cmdb-opened database must be
  // byte-identical.
  datagen::SyntheticConfig cfg;
  cfg.num_relations = 8;
  cfg.expected_tuples = 150;
  cfg.seed = 17;
  StatusOr<Database> db = datagen::GenerateSyntheticDatabase(cfg);
  ASSERT_TRUE(db.ok());

  std::string csv_dir = TempPath("csv");
  std::filesystem::create_directories(csv_dir);
  ASSERT_TRUE(storage::SaveDatabaseCsv(*db, csv_dir).ok());
  StatusOr<Database> from_csv = storage::LoadDatabaseCsv(csv_dir);
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();

  std::string cmdb = TempPath("converted.cmdb");
  ASSERT_TRUE(storage::SaveDatabaseColumnar(*from_csv, cmdb).ok());
  StatusOr<Database> from_cmdb = storage::OpenDatabase(cmdb);
  ASSERT_TRUE(from_cmdb.ok()) << from_cmdb.status().ToString();

  ExpectSameDatabase(*from_csv, *from_cmdb);
  EXPECT_EQ(TrainedModelBytes(*from_csv, "csv"),
            TrainedModelBytes(*from_cmdb, "converted"))
      << "CSV-loaded and cmdb-opened training diverged";
}

}  // namespace
}  // namespace crossmine
