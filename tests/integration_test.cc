// End-to-end integration tests: full pipelines over generated databases,
// cross-classifier comparisons, and persistence round trips.

#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/foil.h"
#include "baselines/tilde.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/classifier.h"
#include "datagen/financial.h"
#include "datagen/mutagenesis.h"
#include "datagen/synthetic.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "storage/storage.h"

namespace crossmine {
namespace {

double MajorityBaseline(const Database& db) {
  std::vector<uint32_t> counts(static_cast<size_t>(db.num_classes()), 0);
  for (ClassId l : db.labels()) ++counts[static_cast<size_t>(l)];
  return static_cast<double>(
             *std::max_element(counts.begin(), counts.end())) /
         static_cast<double>(db.labels().size());
}

TEST(IntegrationTest, CrossMineBeatsMajorityOnSynthetic) {
  datagen::SyntheticConfig cfg;
  cfg.num_relations = 10;
  cfg.expected_tuples = 300;
  cfg.seed = 71;
  StatusOr<Database> db = datagen::GenerateSyntheticDatabase(cfg);
  ASSERT_TRUE(db.ok());

  CrossMineOptions opts;
  opts.use_aggregation_literals = false;
  opts.use_numerical_literals = false;
  auto result = eval::CrossValidate(
      *db, [&] { return std::make_unique<CrossMineClassifier>(opts); }, 3, 1);
  EXPECT_GT(result.mean_accuracy, MajorityBaseline(*db) + 0.1);
  EXPECT_GT(result.mean_accuracy, 0.7);
}

TEST(IntegrationTest, CrossMineFasterThanFoilAtScale) {
  // The paper's headline: tuple ID propagation vs physical joins. Even at
  // modest scale the gap is an order of magnitude.
  datagen::SyntheticConfig cfg;
  cfg.num_relations = 10;
  cfg.expected_tuples = 300;
  cfg.seed = 72;
  StatusOr<Database> db = datagen::GenerateSyntheticDatabase(cfg);
  ASSERT_TRUE(db.ok());

  CrossMineOptions copt;
  copt.use_aggregation_literals = false;
  copt.use_numerical_literals = false;
  baselines::FoilOptions fopt;
  fopt.use_numerical_literals = false;
  fopt.time_budget_seconds = 60;

  auto cm = eval::CrossValidate(
      *db, [&] { return std::make_unique<CrossMineClassifier>(copt); }, 2, 1);
  auto foil = eval::CrossValidate(
      *db, [&] { return std::make_unique<baselines::FoilClassifier>(fopt); },
      2, 1, /*fold_time_limit_seconds=*/60);
  EXPECT_GT(foil.mean_fold_seconds, cm.mean_fold_seconds * 3);
}

TEST(IntegrationTest, FinancialDatabaseLearnable) {
  datagen::FinancialConfig cfg;
  cfg.num_loans = 300;
  cfg.num_accounts = 900;
  cfg.num_clients = 1000;
  cfg.trans_per_account = 3;  // keep the test quick
  StatusOr<Database> db = datagen::GenerateFinancialDatabase(cfg);
  ASSERT_TRUE(db.ok());

  CrossMineOptions opts;  // all three literal families, like Table 2
  auto result = eval::CrossValidate(
      *db, [&] { return std::make_unique<CrossMineClassifier>(opts); }, 3, 1);
  EXPECT_GT(result.mean_accuracy, MajorityBaseline(*db));
  EXPECT_GT(result.mean_accuracy, 0.8);
}

TEST(IntegrationTest, MutagenesisDatabaseLearnable) {
  datagen::MutagenesisConfig cfg;
  StatusOr<Database> db = datagen::GenerateMutagenesisDatabase(cfg);
  ASSERT_TRUE(db.ok());

  CrossMineOptions opts;
  auto result = eval::CrossValidate(
      *db, [&] { return std::make_unique<CrossMineClassifier>(opts); }, 3, 1);
  EXPECT_GT(result.mean_accuracy, 0.7);
}

TEST(IntegrationTest, SamplingSpeedsUpLargePositiveImbalance) {
  datagen::SyntheticConfig cfg;
  cfg.num_relations = 10;
  cfg.expected_tuples = 1000;
  cfg.seed = 73;
  StatusOr<Database> db = datagen::GenerateSyntheticDatabase(cfg);
  ASSERT_TRUE(db.ok());
  std::vector<TupleId> ids(db->target_relation().num_tuples());
  for (TupleId t = 0; t < ids.size(); ++t) ids[t] = t;

  CrossMineOptions plain;
  plain.use_aggregation_literals = false;
  plain.use_numerical_literals = false;
  CrossMineOptions sampled = plain;
  sampled.use_sampling = true;

  Stopwatch w1;
  CrossMineClassifier a(plain);
  ASSERT_TRUE(a.Train(*db, ids).ok());
  double t_plain = w1.ElapsedSeconds();
  Stopwatch w2;
  CrossMineClassifier b(sampled);
  ASSERT_TRUE(b.Train(*db, ids).ok());
  double t_sampled = w2.ElapsedSeconds();
  // §6: sampling reduces per-clause cost once most positives are covered.
  EXPECT_LT(t_sampled, t_plain * 1.1);
}

TEST(IntegrationTest, CsvRoundTripPreservesPredictions) {
  datagen::SyntheticConfig cfg;
  cfg.num_relations = 6;
  cfg.expected_tuples = 120;
  cfg.seed = 74;
  StatusOr<Database> db = datagen::GenerateSyntheticDatabase(cfg);
  ASSERT_TRUE(db.ok());

  std::string dir = ::testing::TempDir() + "/integration_csv";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(storage::SaveDatabase(*db, dir).ok());
  StatusOr<Database> loaded = storage::OpenDatabase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  std::vector<TupleId> ids(db->target_relation().num_tuples());
  for (TupleId t = 0; t < ids.size(); ++t) ids[t] = t;
  CrossMineOptions opts;
  opts.use_aggregation_literals = false;
  CrossMineClassifier a(opts), b(opts);
  ASSERT_TRUE(a.Train(*db, ids).ok());
  ASSERT_TRUE(b.Train(*loaded, ids).ok());
  EXPECT_EQ(a.Predict(*db, ids), b.Predict(*loaded, ids));
}

TEST(IntegrationTest, AllThreeClassifiersAgreeOnEasyTask) {
  // A task with one dominant 1-hop rule: everyone should solve it.
  datagen::SyntheticConfig cfg;
  cfg.num_relations = 4;
  cfg.expected_tuples = 150;
  cfg.num_clauses = 2;
  cfg.min_literals = 1;
  cfg.max_literals = 2;
  cfg.prob_two_hop = 0.0;
  cfg.seed = 75;
  StatusOr<Database> db = datagen::GenerateSyntheticDatabase(cfg);
  ASSERT_TRUE(db.ok());

  CrossMineOptions copt;
  copt.use_aggregation_literals = false;
  copt.use_numerical_literals = false;
  baselines::FoilOptions fopt;
  fopt.use_numerical_literals = false;
  fopt.time_budget_seconds = 60;
  baselines::TildeOptions topt;
  topt.use_numerical_literals = false;
  topt.time_budget_seconds = 60;

  auto cm = eval::CrossValidate(
      *db, [&] { return std::make_unique<CrossMineClassifier>(copt); }, 3, 1);
  auto foil = eval::CrossValidate(
      *db, [&] { return std::make_unique<baselines::FoilClassifier>(fopt); },
      3, 1);
  auto tilde = eval::CrossValidate(
      *db,
      [&] { return std::make_unique<baselines::TildeClassifier>(topt); }, 3,
      1);
  EXPECT_GT(cm.mean_accuracy, 0.75);
  EXPECT_GT(foil.mean_accuracy, 0.7);
  EXPECT_GT(tilde.mean_accuracy, 0.7);
}

TEST(IntegrationTest, LookAheadReachesThroughRelationshipRelations) {
  // Fig. 7 scenario distilled: Loan -- Has_Loan -- Client, with the signal
  // only on Client. Without look-one-ahead CrossMine cannot see it.
  Database db;
  RelationSchema client("Client");
  client.AddPrimaryKey("client_id");
  AttrId risk = client.AddCategorical("risk");
  db.AddRelation(std::move(client));
  RelationSchema loan("Loan");
  loan.AddPrimaryKey("loan_id");
  db.AddRelation(std::move(loan));
  RelationSchema has_loan("Has_Loan");
  has_loan.AddPrimaryKey("id");
  AttrId hl_loan = has_loan.AddForeignKey("loan_id", 1);
  AttrId hl_client = has_loan.AddForeignKey("client_id", 0);
  db.AddRelation(std::move(has_loan));
  db.SetTarget(1);

  Relation& clients = db.mutable_relation(0);
  Relation& loans = db.mutable_relation(1);
  Relation& links = db.mutable_relation(2);
  std::vector<ClassId> labels;
  Rng rng(123);
  for (TupleId i = 0; i < 80; ++i) {
    TupleId c = clients.AddTuple();
    clients.SetInt(c, 0, c);
    int64_t risky = rng.Bernoulli(0.5) ? 1 : 0;
    clients.SetInt(c, risk, risky);
    TupleId l = loans.AddTuple();
    loans.SetInt(l, 0, l);
    TupleId link = links.AddTuple();
    links.SetInt(link, 0, link);
    links.SetInt(link, hl_loan, l);
    links.SetInt(link, hl_client, c);
    labels.push_back(risky ? 0 : 1);
  }
  db.SetLabels(labels, 2);
  ASSERT_TRUE(db.Finalize().ok());

  std::vector<TupleId> ids(80);
  for (TupleId i = 0; i < 80; ++i) ids[i] = i;

  CrossMineOptions with;
  with.min_foil_gain = 1.0;
  CrossMineOptions without = with;
  without.look_one_ahead = false;

  CrossMineClassifier a(with), b(without);
  ASSERT_TRUE(a.Train(db, ids).ok());
  ASSERT_TRUE(b.Train(db, ids).ok());
  double acc_with =
      eval::Accuracy(db.labels(), a.Predict(db, ids));
  double acc_without =
      eval::Accuracy(db.labels(), b.Predict(db, ids));
  EXPECT_DOUBLE_EQ(acc_with, 1.0);
  EXPECT_LT(acc_without, 0.8);
}

}  // namespace
}  // namespace crossmine
