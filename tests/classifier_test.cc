#include "core/classifier.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace crossmine {
namespace {

using testing::Fig2Database;
using testing::MakeFig2Database;

CrossMineOptions SmallDataOptions() {
  CrossMineOptions opts;
  opts.min_foil_gain = 0.5;
  return opts;
}

TEST(ClassifierTest, TrainRequiresFinalizedDatabase) {
  Database db;
  RelationSchema t("T");
  t.AddPrimaryKey("id");
  db.AddRelation(std::move(t));
  db.SetTarget(0);
  CrossMineClassifier model;
  EXPECT_EQ(model.Train(db, {0}).code(), StatusCode::kFailedPrecondition);
}

TEST(ClassifierTest, TrainRejectsEmptyTrainingSet) {
  Fig2Database f = MakeFig2Database();
  CrossMineClassifier model;
  EXPECT_EQ(model.Train(f.db, {}).code(), StatusCode::kInvalidArgument);
}

TEST(ClassifierTest, TrainRejectsOutOfRangeIds) {
  Fig2Database f = MakeFig2Database();
  CrossMineClassifier model;
  EXPECT_EQ(model.Train(f.db, {0, 99}).code(), StatusCode::kOutOfRange);
}

TEST(ClassifierTest, LearnsMonthlyWeeklyRule) {
  Fig2Database f = MakeFig2Database();
  CrossMineClassifier model(SmallDataOptions());
  ASSERT_TRUE(model.Train(f.db, {0, 1, 2, 3, 4}).ok());
  ASSERT_FALSE(model.clauses().empty());

  // Perfect predictions on the training data.
  std::vector<ClassId> pred = model.Predict(f.db, {0, 1, 2, 3, 4});
  EXPECT_EQ(pred, (std::vector<ClassId>{1, 1, 0, 0, 1}));
}

TEST(ClassifierTest, ClausesBuiltForEveryClass) {
  Fig2Database f = MakeFig2Database();
  CrossMineClassifier model(SmallDataOptions());
  ASSERT_TRUE(model.Train(f.db, {0, 1, 2, 3, 4}).ok());
  bool has0 = false, has1 = false;
  for (const Clause& c : model.clauses()) {
    has0 |= (c.predicted_class == 0);
    has1 |= (c.predicted_class == 1);
  }
  EXPECT_TRUE(has0);
  EXPECT_TRUE(has1);
}

TEST(ClassifierTest, DefaultClassIsTrainingMajority) {
  Fig2Database f = MakeFig2Database();
  CrossMineClassifier model(SmallDataOptions());
  ASSERT_TRUE(model.Train(f.db, {0, 1, 2, 3, 4}).ok());
  EXPECT_EQ(model.default_class(), 1);  // 3 positive vs 2 negative
}

TEST(ClassifierTest, LabelsOutsideTrainingSetNeverRead) {
  // Corrupting test labels must not change the model.
  Fig2Database f = MakeFig2Database();
  CrossMineClassifier a(SmallDataOptions());
  ASSERT_TRUE(a.Train(f.db, {0, 1, 2, 3}).ok());
  std::vector<ClassId> pred_before = a.Predict(f.db, {4});

  std::vector<ClassId> corrupted = f.db.labels();
  corrupted[4] = 1 - corrupted[4];
  f.db.SetLabels(corrupted, 2);
  CrossMineClassifier b(SmallDataOptions());
  ASSERT_TRUE(b.Train(f.db, {0, 1, 2, 3}).ok());
  EXPECT_EQ(b.Predict(f.db, {4}), pred_before);
  EXPECT_EQ(a.clauses().size(), b.clauses().size());
}

TEST(ClassifierTest, DeterministicForSameSeed) {
  datagen::SyntheticConfig cfg;
  cfg.num_relations = 6;
  cfg.expected_tuples = 120;
  cfg.seed = 42;
  StatusOr<Database> db = datagen::GenerateSyntheticDatabase(cfg);
  ASSERT_TRUE(db.ok());
  std::vector<TupleId> ids(db->target_relation().num_tuples());
  for (TupleId t = 0; t < ids.size(); ++t) ids[t] = t;

  CrossMineOptions opts;
  opts.use_sampling = true;
  opts.seed = 9;
  CrossMineClassifier a(opts), b(opts);
  ASSERT_TRUE(a.Train(*db, ids).ok());
  ASSERT_TRUE(b.Train(*db, ids).ok());
  ASSERT_EQ(a.clauses().size(), b.clauses().size());
  for (size_t i = 0; i < a.clauses().size(); ++i) {
    EXPECT_EQ(a.clauses()[i].ToString(*db), b.clauses()[i].ToString(*db));
  }
  EXPECT_EQ(a.Predict(*db, ids), b.Predict(*db, ids));
}

TEST(ClassifierTest, RetrainClearsPreviousModel) {
  Fig2Database f = MakeFig2Database();
  CrossMineClassifier model(SmallDataOptions());
  ASSERT_TRUE(model.Train(f.db, {0, 1, 2, 3, 4}).ok());
  size_t first = model.clauses().size();
  ASSERT_TRUE(model.Train(f.db, {0, 1, 2, 3, 4}).ok());
  EXPECT_EQ(model.clauses().size(), first);
}

TEST(ClassifierTest, PredictOneMatchesBatch) {
  Fig2Database f = MakeFig2Database();
  CrossMineClassifier model(SmallDataOptions());
  ASSERT_TRUE(model.Train(f.db, {0, 1, 2, 3, 4}).ok());
  std::vector<ClassId> batch = model.Predict(f.db, {0, 1, 2, 3, 4});
  for (TupleId t = 0; t < 5; ++t) {
    EXPECT_EQ(model.PredictOne(f.db, t), batch[t]);
  }
}

TEST(ClassifierTest, MulticlassOneVsRest) {
  // Three classes keyed directly to a categorical attribute of the target.
  Database db;
  RelationSchema t("T");
  t.AddPrimaryKey("id");
  AttrId c = t.AddCategorical("c");
  db.AddRelation(std::move(t));
  db.SetTarget(0);
  Relation& rel = db.mutable_relation(0);
  std::vector<ClassId> labels;
  for (int i = 0; i < 30; ++i) {
    TupleId id = rel.AddTuple();
    rel.SetInt(id, 0, id);
    rel.SetInt(id, c, i % 3);
    labels.push_back(i % 3);
  }
  db.SetLabels(labels, 3);
  ASSERT_TRUE(db.Finalize().ok());

  CrossMineOptions opts;
  opts.min_foil_gain = 0.5;
  CrossMineClassifier model(opts);
  std::vector<TupleId> ids(30);
  for (TupleId i = 0; i < 30; ++i) ids[i] = i;
  ASSERT_TRUE(model.Train(db, ids).ok());
  std::vector<ClassId> pred = model.Predict(db, ids);
  EXPECT_EQ(pred, labels);
}

TEST(ClassifierTest, SamplingPreservesAccuracyApproximately) {
  datagen::SyntheticConfig cfg;
  cfg.num_relations = 8;
  cfg.expected_tuples = 250;
  cfg.seed = 21;
  StatusOr<Database> db = datagen::GenerateSyntheticDatabase(cfg);
  ASSERT_TRUE(db.ok());

  CrossMineOptions plain;
  plain.use_aggregation_literals = false;
  plain.use_numerical_literals = false;
  CrossMineOptions sampled = plain;
  sampled.use_sampling = true;
  sampled.max_num_negative = 100;

  auto run = [&](const CrossMineOptions& o) {
    return eval::CrossValidate(
               *db, [&] { return std::make_unique<CrossMineClassifier>(o); },
               3, 1)
        .mean_accuracy;
  };
  double acc_plain = run(plain);
  double acc_sampled = run(sampled);
  EXPECT_GT(acc_plain, 0.6);
  // "the sampling method only slightly sacrifices the accuracy" (§7.1).
  EXPECT_GT(acc_sampled, acc_plain - 0.12);
}

TEST(ClassifierTest, MinFoilGainControlsModelSize) {
  datagen::SyntheticConfig cfg;
  cfg.num_relations = 6;
  cfg.expected_tuples = 150;
  cfg.seed = 33;
  StatusOr<Database> db = datagen::GenerateSyntheticDatabase(cfg);
  ASSERT_TRUE(db.ok());
  std::vector<TupleId> ids(db->target_relation().num_tuples());
  for (TupleId t = 0; t < ids.size(); ++t) ids[t] = t;

  CrossMineOptions loose;
  loose.min_foil_gain = 1.0;
  loose.use_aggregation_literals = false;
  CrossMineOptions strict = loose;
  strict.min_foil_gain = 10.0;
  CrossMineClassifier a(loose), b(strict);
  ASSERT_TRUE(a.Train(*db, ids).ok());
  ASSERT_TRUE(b.Train(*db, ids).ok());
  EXPECT_GE(a.clauses().size(), b.clauses().size());
}

TEST(ClassifierTest, MaxClauseLengthRespected) {
  datagen::SyntheticConfig cfg;
  cfg.num_relations = 6;
  cfg.expected_tuples = 150;
  cfg.seed = 34;
  StatusOr<Database> db = datagen::GenerateSyntheticDatabase(cfg);
  ASSERT_TRUE(db.ok());
  std::vector<TupleId> ids(db->target_relation().num_tuples());
  for (TupleId t = 0; t < ids.size(); ++t) ids[t] = t;

  CrossMineOptions opts;
  opts.max_clause_length = 2;
  CrossMineClassifier model(opts);
  ASSERT_TRUE(model.Train(*db, ids).ok());
  for (const Clause& c : model.clauses()) {
    EXPECT_LE(c.length(), 2);
  }
}

TEST(ClassifierTest, ClauseAccuracyInUnitRange) {
  Fig2Database f = MakeFig2Database();
  CrossMineClassifier model(SmallDataOptions());
  ASSERT_TRUE(model.Train(f.db, {0, 1, 2, 3, 4}).ok());
  for (const Clause& c : model.clauses()) {
    EXPECT_GT(c.accuracy, 0.0);
    EXPECT_LT(c.accuracy, 1.0);
    EXPECT_GE(c.sup_pos, 1.0);
  }
}

TEST(ClassifierTest, ToStringListsClauses) {
  Fig2Database f = MakeFig2Database();
  CrossMineClassifier model(SmallDataOptions());
  ASSERT_TRUE(model.Train(f.db, {0, 1, 2, 3, 4}).ok());
  std::string s = model.ToString(f.db);
  EXPECT_NE(s.find("CrossMine model"), std::string::npos);
  EXPECT_NE(s.find(":-"), std::string::npos);
}

}  // namespace
}  // namespace crossmine
