#include "core/clause_builder.h"

#include <gtest/gtest.h>

#include "core/clause_eval.h"
#include "test_util.h"

namespace crossmine {
namespace {

using testing::Fig2Database;
using testing::MakeFig2Database;
using testing::MakeRandomDatabase;

struct BuilderSetup {
  std::vector<uint8_t> positive;
  std::vector<uint8_t> alive;
};

BuilderSetup SetupBinary(const Database& db, ClassId positive_class) {
  BuilderSetup s;
  TupleId n = db.target_relation().num_tuples();
  s.positive.resize(n);
  s.alive.assign(n, 1);
  for (TupleId t = 0; t < n; ++t) {
    s.positive[t] = db.labels()[t] == positive_class;
  }
  return s;
}

TEST(ClauseBuilderTest, BuildsTheMonthlyClause) {
  Fig2Database f = MakeFig2Database();
  BuilderSetup s = SetupBinary(f.db, 1);
  CrossMineOptions opts;
  opts.min_foil_gain = 0.5;
  opts.use_aggregation_literals = false;
  ClauseBuilder builder(&f.db, &s.positive, &opts);
  Clause clause = builder.Build(s.alive);
  ASSERT_FALSE(clause.empty());
  // Whatever literal sequence is chosen, the final clause must cover only
  // positives (the dataset is separable).
  EXPECT_GT(builder.final_pos(), 0u);
  EXPECT_EQ(builder.final_neg(), 0u);
}

TEST(ClauseBuilderTest, HighGainThresholdYieldsEmptyClause) {
  Fig2Database f = MakeFig2Database();
  BuilderSetup s = SetupBinary(f.db, 1);
  CrossMineOptions opts;
  opts.min_foil_gain = 100.0;  // nothing on 5 tuples reaches this
  ClauseBuilder builder(&f.db, &s.positive, &opts);
  Clause clause = builder.Build(s.alive);
  EXPECT_TRUE(clause.empty());
  // An empty clause filters nothing.
  EXPECT_EQ(builder.final_pos(), 3u);
  EXPECT_EQ(builder.final_neg(), 2u);
}

TEST(ClauseBuilderTest, StopsAtMaxClauseLength) {
  Database db = MakeRandomDatabase(7, /*num_relations=*/3, /*max_tuples=*/25);
  BuilderSetup s = SetupBinary(db, 1);
  CrossMineOptions opts;
  opts.min_foil_gain = 0.01;  // accept nearly anything
  opts.max_clause_length = 2;
  ClauseBuilder builder(&db, &s.positive, &opts);
  Clause clause = builder.Build(s.alive);
  EXPECT_LE(clause.length(), 2);
}

TEST(ClauseBuilderTest, StopsEarlyOnPerfectClause) {
  Fig2Database f = MakeFig2Database();
  BuilderSetup s = SetupBinary(f.db, 1);
  CrossMineOptions opts;
  opts.min_foil_gain = 0.1;
  opts.max_clause_length = 6;
  opts.use_aggregation_literals = false;
  ClauseBuilder builder(&f.db, &s.positive, &opts);
  Clause clause = builder.Build(s.alive);
  // frequency=monthly already reaches 3+/1-; one more literal separates
  // fully — no reason to use all six slots.
  EXPECT_LE(clause.length(), 3);
  EXPECT_EQ(builder.final_neg(), 0u);
}

TEST(ClauseBuilderTest, FinalAliveConsistentWithApplier) {
  Database db = MakeRandomDatabase(11);
  BuilderSetup s = SetupBinary(db, 1);
  CrossMineOptions opts;
  opts.min_foil_gain = 0.2;
  ClauseBuilder builder(&db, &s.positive, &opts);
  std::vector<uint8_t> initial = s.alive;
  Clause clause = builder.Build(s.alive);
  EXPECT_EQ(builder.final_alive(), ClauseSatisfiedMask(db, clause, initial));
}

TEST(ClauseBuilderTest, RestrictiveFanoutLimitsDegradeGracefully) {
  Fig2Database f = MakeFig2Database();
  BuilderSetup s = SetupBinary(f.db, 1);
  CrossMineOptions opts;
  opts.min_foil_gain = 0.5;
  opts.use_aggregation_literals = false;
  // Reject every propagation: only target-relation literals remain.
  opts.propagation_limits.max_total_ids = 1;
  ClauseBuilder builder(&f.db, &s.positive, &opts);
  Clause clause = builder.Build(s.alive);
  for (const ComplexLiteral& lit : clause.literals()) {
    EXPECT_TRUE(lit.edge_path.empty());
  }
}

TEST(ClauseBuilderTest, RespectsInitialAliveMask) {
  Fig2Database f = MakeFig2Database();
  BuilderSetup s = SetupBinary(f.db, 1);
  // Only loans {0, 2} participate.
  s.alive = {1, 0, 1, 0, 0};
  CrossMineOptions opts;
  opts.min_foil_gain = 0.1;
  opts.use_aggregation_literals = false;
  ClauseBuilder builder(&f.db, &s.positive, &opts);
  Clause clause = builder.Build(s.alive);
  for (TupleId t : {1u, 3u, 4u}) {
    EXPECT_FALSE(builder.final_alive()[t]);
  }
}

class BuilderPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BuilderPropertyTest, EveryBuiltClauseCoversAPositive) {
  Database db = MakeRandomDatabase(GetParam());
  BuilderSetup s = SetupBinary(db, 1);
  CrossMineOptions opts;
  opts.min_foil_gain = 0.3;
  ClauseBuilder builder(&db, &s.positive, &opts);
  Clause clause = builder.Build(s.alive);
  if (clause.empty()) return;
  EXPECT_GT(builder.final_pos(), 0u);
  // Counts must agree with the alive mask.
  uint32_t pos = 0, neg = 0;
  for (TupleId t = 0; t < db.target_relation().num_tuples(); ++t) {
    if (!builder.final_alive()[t]) continue;
    if (s.positive[t]) {
      ++pos;
    } else {
      ++neg;
    }
  }
  EXPECT_EQ(builder.final_pos(), pos);
  EXPECT_EQ(builder.final_neg(), neg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderPropertyTest,
                         ::testing::Range<uint64_t>(500, 512));

}  // namespace
}  // namespace crossmine
