// Cross-module property suites: randomized comparisons of production code
// against brute-force oracles, beyond the per-module property tests.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>

#include "common/random.h"
#include "core/classifier.h"
#include "core/foil_gain.h"
#include "core/literal_search.h"
#include "core/propagation.h"
#include "eval/metrics.h"
#include "storage/storage.h"
#include "test_util.h"

namespace crossmine {
namespace {

using testing::MakeRandomDatabase;

// ---------------------------------------------------------------- idsets --

class IdSetFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IdSetFuzzTest, UnionMatchesStdSet) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    IdSet a, b;
    std::set<TupleId> oracle;
    for (int i = 0; i < 20; ++i) {
      if (rng.Bernoulli(0.6)) {
        TupleId v = static_cast<TupleId>(rng.Uniform(30));
        a.push_back(v);
        oracle.insert(v);
      }
      if (rng.Bernoulli(0.6)) {
        TupleId v = static_cast<TupleId>(rng.Uniform(30));
        b.push_back(v);
        oracle.insert(v);
      }
    }
    NormalizeIdSet(&a);
    NormalizeIdSet(&b);
    UnionInPlace(&a, b);
    EXPECT_EQ(a, IdSet(oracle.begin(), oracle.end()));
  }
}

TEST_P(IdSetFuzzTest, FilterMatchesStdSet) {
  Rng rng(GetParam() ^ 0x5555);
  for (int round = 0; round < 50; ++round) {
    IdSet s;
    for (int i = 0; i < 25; ++i) {
      s.push_back(static_cast<TupleId>(rng.Uniform(40)));
    }
    NormalizeIdSet(&s);
    std::vector<uint8_t> alive(40);
    for (auto& a : alive) a = rng.Bernoulli(0.5);
    std::set<TupleId> oracle;
    for (TupleId v : s) {
      if (alive[v]) oracle.insert(v);
    }
    FilterIdSet(&s, alive);
    EXPECT_EQ(s, IdSet(oracle.begin(), oracle.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdSetFuzzTest,
                         ::testing::Range<uint64_t>(600, 608));

// ------------------------------------------- numerical literal coverage --

class NumericalLiteralOracleTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NumericalLiteralOracleTest, BestLiteralCountsMatchBruteForce) {
  Database db = MakeRandomDatabase(GetParam());
  TupleId n = db.target_relation().num_tuples();
  std::vector<uint8_t> positive(n), alive(n, 1);
  uint32_t pos = 0, neg = 0;
  for (TupleId t = 0; t < n; ++t) {
    positive[t] = db.labels()[t] == 1;
    if (positive[t]) {
      ++pos;
    } else {
      ++neg;
    }
  }
  LiteralSearcher searcher(&db, &positive);
  searcher.SetContext(&alive, pos, neg);

  std::vector<uint8_t> all(n, 1);
  IdSetStore root;
  root.InitIdentity(all);

  for (const JoinEdge& edge : db.edges()) {
    if (edge.from_rel != db.target()) continue;
    PropagationResult prop = PropagateIds(db, edge, root, nullptr);
    ASSERT_TRUE(prop.ok);
    const Relation& rel = db.relation(edge.to_rel);

    CrossMineOptions opts;
    opts.use_aggregation_literals = false;  // numerical-only focus
    CandidateLiteral best = searcher.FindBest(edge.to_rel, prop.idsets, opts);
    if (!best.valid() || best.constraint.cmp == CmpOp::kEq) continue;

    // Recompute coverage of the winning numerical literal by brute force.
    std::set<TupleId> covered;
    const Column<double>& col = rel.DoubleColumn(best.constraint.attr);
    for (TupleId u = 0; u < rel.num_tuples(); ++u) {
      bool ok = best.constraint.cmp == CmpOp::kLe
                    ? col[u] <= best.constraint.threshold
                    : col[u] >= best.constraint.threshold;
      if (!ok) continue;
      prop.idsets.ForEach(u, [&](TupleId id) { covered.insert(id); });
    }
    uint32_t p = 0, ng = 0;
    for (TupleId id : covered) {
      if (positive[id]) {
        ++p;
      } else {
        ++ng;
      }
    }
    EXPECT_EQ(best.pos_cov, p);
    EXPECT_EQ(best.neg_cov, ng);
    EXPECT_DOUBLE_EQ(best.gain, FoilGain(pos, neg, p, ng));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NumericalLiteralOracleTest,
                         ::testing::Range<uint64_t>(620, 632));

// ------------------------------------------- FK-FK propagation symmetry --

class FkFkPropagationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FkFkPropagationTest, MatchesBruteForceOnFkFkEdges) {
  // MakeRandomDatabase gives non-target relations optional FKs back to the
  // target, creating FK-FK edges between them through the target's PK.
  Database db = MakeRandomDatabase(GetParam(), /*num_relations=*/4);
  std::vector<uint8_t> all(db.target_relation().num_tuples(), 1);
  IdSetStore root;
  root.InitIdentity(all);

  int fkfk_checked = 0;
  for (const JoinEdge& first : db.edges()) {
    if (first.from_rel != db.target()) continue;
    PropagationResult at_mid = PropagateIds(db, first, root, nullptr);
    ASSERT_TRUE(at_mid.ok);
    for (int32_t e2 : db.OutEdges(first.to_rel)) {
      const JoinEdge& second = db.edges()[static_cast<size_t>(e2)];
      if (second.kind != JoinKind::kFkToFk) continue;
      PropagationResult got =
          PropagateIds(db, second, at_mid.idsets, nullptr);
      ASSERT_TRUE(got.ok);
      EXPECT_EQ(IdSetsFromStore(got.idsets),
                testing::BruteForcePropagate(
                    db, second, IdSetsFromStore(at_mid.idsets), nullptr));
      ++fkfk_checked;
    }
  }
  // The schema generator usually creates at least one FK-FK edge; when it
  // does not, the test is vacuous for that seed (allowed).
  (void)fkfk_checked;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FkFkPropagationTest,
                         ::testing::Range<uint64_t>(640, 650));

// ------------------------------------------------------ CSV value fuzz ---

class CsvValueFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvValueFuzzTest, ExtremeNumericsSurviveRoundTrip) {
  Database db;
  RelationSchema t("T");
  t.AddPrimaryKey("id");
  AttrId x = t.AddNumerical("x");
  AttrId c = t.AddCategorical("c");
  db.AddRelation(std::move(t));
  db.SetTarget(0);

  Rng rng(GetParam());
  Relation& rel = db.mutable_relation(0);
  std::vector<ClassId> labels;
  const double extremes[] = {0.0,    -0.0,   1e-300, -1e300,
                             3.14159265358979, 1e17,  -123456.789};
  for (int i = 0; i < 40; ++i) {
    TupleId id = rel.AddTuple();
    rel.SetInt(id, 0, id);
    double v = rng.Bernoulli(0.4) ? extremes[rng.Uniform(7)]
                                  : rng.UniformDouble(-1e6, 1e6);
    rel.SetDouble(id, x, v);
    rel.SetInt(id, c, static_cast<int64_t>(rng.Uniform(5)));
    labels.push_back(rng.Bernoulli(0.5) ? 1 : 0);
  }
  db.SetLabels(labels, 2);
  ASSERT_TRUE(db.Finalize().ok());

  std::string dir = ::testing::TempDir() + "/csv_fuzz_" +
                    std::to_string(GetParam());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(storage::SaveDatabase(db, dir).ok());
  StatusOr<Database> loaded = storage::OpenDatabase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (TupleId id = 0; id < 40u; ++id) {
    EXPECT_DOUBLE_EQ(loaded->relation(0).Double(id, x),
                     db.relation(0).Double(id, x));
    EXPECT_EQ(loaded->relation(0).Int(id, c), db.relation(0).Int(id, c));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvValueFuzzTest,
                         ::testing::Range<uint64_t>(660, 666));

// ----------------------------------------------- end-to-end train fuzz ---

class TrainFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrainFuzzTest, TrainPredictNeverCrashesAndStaysInRange) {
  Database db = MakeRandomDatabase(GetParam(), /*num_relations=*/4,
                                   /*max_tuples=*/40);
  std::vector<TupleId> ids(db.target_relation().num_tuples());
  for (TupleId t = 0; t < ids.size(); ++t) ids[t] = t;

  CrossMineOptions opts;
  opts.min_foil_gain = 0.2;
  opts.use_sampling = (GetParam() % 2) == 0;
  opts.prediction_mode = static_cast<PredictionMode>(GetParam() % 3);
  CrossMineClassifier model(opts);
  ASSERT_TRUE(model.Train(db, ids).ok());
  std::vector<ClassId> pred = model.Predict(db, ids);
  ASSERT_EQ(pred.size(), ids.size());
  for (ClassId p : pred) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, db.num_classes());
  }
  // Training-set accuracy must beat random guessing on labels it has seen
  // (random labels: models may memorize little, so only sanity-check the
  // range, not a threshold).
  std::vector<ClassId> truth;
  for (TupleId t : ids) truth.push_back(db.labels()[t]);
  double acc = eval::Accuracy(truth, pred);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrainFuzzTest,
                         ::testing::Range<uint64_t>(700, 716));

}  // namespace
}  // namespace crossmine
