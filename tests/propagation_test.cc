#include "core/propagation.h"

#include <gtest/gtest.h>

#include "core/idset.h"
#include "test_util.h"

namespace crossmine {
namespace {

using testing::BruteForcePropagate;
using testing::Fig2Database;
using testing::MakeFig2Database;
using testing::MakeRandomDatabase;

// Finds the directed edge between two (relation, attribute) pairs.
const JoinEdge* FindEdge(const Database& db, RelId from, AttrId from_attr,
                         RelId to, AttrId to_attr) {
  for (const JoinEdge& e : db.edges()) {
    if (e.from_rel == from && e.from_attr == from_attr && e.to_rel == to &&
        e.to_attr == to_attr) {
      return &e;
    }
  }
  return nullptr;
}

// Root idset store for the target relation: idset(t) = {t}.
IdSetStore RootStore(const Database& db) {
  std::vector<uint8_t> all(db.target_relation().num_tuples(), 1);
  IdSetStore root;
  root.InitIdentity(all);
  return root;
}

TEST(PropagationTest, PaperFig4Example) {
  // Propagating Loan IDs to Account must yield exactly the idsets printed
  // in Fig. 4: account 124 <- {1,2}, 108 <- {3}, 45 <- {4,5}, 67 <- {}.
  // (Our tuple ids are 0-based: accounts 0..3, loans 0..4.)
  Fig2Database f = MakeFig2Database();
  const JoinEdge* edge = FindEdge(f.db, f.loan, f.loan_account, f.account, 0);
  ASSERT_NE(edge, nullptr);

  PropagationResult result =
      PropagateIds(f.db, *edge, RootStore(f.db), nullptr);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.idsets.num_sets(), 4u);
  EXPECT_EQ(result.idsets.ToVector(0), (IdSet{0, 1}));  // account 124
  EXPECT_EQ(result.idsets.ToVector(1), (IdSet{2}));     // account 108
  EXPECT_EQ(result.idsets.ToVector(2), (IdSet{3, 4}));  // account 45
  EXPECT_TRUE(result.idsets.empty(3));                  // account 67
  EXPECT_EQ(result.total_ids, 5u);
}

TEST(PropagationTest, ReversePropagationRecoversLoans) {
  // Account -> Loan (PK to FK): each loan receives the ids of the loans
  // sharing its account.
  Fig2Database f = MakeFig2Database();
  const JoinEdge* to_account =
      FindEdge(f.db, f.loan, f.loan_account, f.account, 0);
  const JoinEdge* to_loan =
      FindEdge(f.db, f.account, 0, f.loan, f.loan_account);
  ASSERT_NE(to_account, nullptr);
  ASSERT_NE(to_loan, nullptr);

  PropagationResult at_account =
      PropagateIds(f.db, *to_account, RootStore(f.db), nullptr);
  PropagationResult back =
      PropagateIds(f.db, *to_loan, at_account.idsets, nullptr);
  ASSERT_TRUE(back.ok);
  // Loans 0 and 1 share account 124.
  EXPECT_EQ(back.idsets.ToVector(0), (IdSet{0, 1}));
  EXPECT_EQ(back.idsets.ToVector(1), (IdSet{0, 1}));
  EXPECT_EQ(back.idsets.ToVector(2), (IdSet{2}));
  EXPECT_EQ(back.idsets.ToVector(3), (IdSet{3, 4}));
  EXPECT_EQ(back.idsets.ToVector(4), (IdSet{3, 4}));
}

TEST(PropagationTest, AliveMaskFiltersIds) {
  Fig2Database f = MakeFig2Database();
  const JoinEdge* edge = FindEdge(f.db, f.loan, f.loan_account, f.account, 0);
  std::vector<uint8_t> alive{1, 0, 1, 0, 1};  // loans 0, 2, 4 alive

  PropagationResult result =
      PropagateIds(f.db, *edge, RootStore(f.db), &alive);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.idsets.ToVector(0), (IdSet{0}));
  EXPECT_EQ(result.idsets.ToVector(1), (IdSet{2}));
  EXPECT_EQ(result.idsets.ToVector(2), (IdSet{4}));
}

TEST(PropagationTest, NullJoinValuesNeverMatch) {
  Fig2Database f = MakeFig2Database();
  // NULL out loan 0's account id.
  f.db.mutable_relation(f.loan).SetInt(0, f.loan_account, kNullValue);
  const JoinEdge* edge = FindEdge(f.db, f.loan, f.loan_account, f.account, 0);
  PropagationResult result =
      PropagateIds(f.db, *edge, RootStore(f.db), nullptr);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.idsets.ToVector(0), (IdSet{1}));  // loan 0 misses 124
}

TEST(PropagationTest, EmptySourceIdsetsYieldEmptyDestination) {
  Fig2Database f = MakeFig2Database();
  const JoinEdge* edge = FindEdge(f.db, f.loan, f.loan_account, f.account, 0);
  IdSetStore empty;
  empty.Reset(f.db.target_relation().num_tuples(),
              f.db.target_relation().num_tuples());
  PropagationResult result = PropagateIds(f.db, *edge, empty, nullptr);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.total_ids, 0u);
}

TEST(PropagationTest, MaxTotalIdsLimitRejects) {
  Fig2Database f = MakeFig2Database();
  const JoinEdge* edge = FindEdge(f.db, f.loan, f.loan_account, f.account, 0);
  PropagationLimits limits;
  limits.max_total_ids = 2;  // Fig. 4 needs 5
  PropagationResult result =
      PropagateIds(f.db, *edge, RootStore(f.db), nullptr, limits);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.idsets.num_sets(), 0u);  // store freed, like a fresh fail
}

TEST(PropagationTest, MaxAvgFanoutLimitRejectsUnselectiveLink) {
  Fig2Database f = MakeFig2Database();
  const JoinEdge* edge = FindEdge(f.db, f.loan, f.loan_account, f.account, 0);
  PropagationLimits limits;
  limits.max_avg_fanout = 1.2;  // Fig. 4 average is 5/3 ≈ 1.67
  PropagationResult result =
      PropagateIds(f.db, *edge, RootStore(f.db), nullptr, limits);
  EXPECT_FALSE(result.ok);

  limits.max_avg_fanout = 2.0;  // now admissible
  result = PropagateIds(f.db, *edge, RootStore(f.db), nullptr, limits);
  EXPECT_TRUE(result.ok);
}

TEST(PropagationTest, RefreshMatchesFreshPropagationAndCompactsArena) {
  Fig2Database f = MakeFig2Database();
  const JoinEdge* edge = FindEdge(f.db, f.loan, f.loan_account, f.account, 0);
  PropagationResult result =
      PropagateIds(f.db, *edge, RootStore(f.db), nullptr);
  ASSERT_TRUE(result.ok);
  uint64_t bytes_before = result.idsets.arena_bytes();

  std::vector<uint8_t> alive{1, 0, 1, 0, 1};
  ASSERT_TRUE(RefreshPropagation(&result, alive, PropagationLimits{}));
  PropagationResult fresh = PropagateIds(f.db, *edge, RootStore(f.db), &alive);
  EXPECT_EQ(IdSetsFromStore(result.idsets), IdSetsFromStore(fresh.idsets));
  EXPECT_EQ(result.total_ids, fresh.total_ids);
  // The compaction reclaims the dropped ids' storage in place.
  EXPECT_LE(result.idsets.arena_bytes(), bytes_before);
}

TEST(PropagationTest, TransitivePropagationLemma2) {
  // Chain: Target -> Mid -> Leaf; IDs propagated through Mid must equal
  // the target tuples joinable along the two-hop path.
  Database db;
  RelationSchema leaf("Leaf");
  leaf.AddPrimaryKey("id");
  db.AddRelation(std::move(leaf));
  RelationSchema mid("Mid");
  mid.AddPrimaryKey("id");
  mid.AddForeignKey("leaf_id", 0);
  db.AddRelation(std::move(mid));
  RelationSchema target("Target");
  target.AddPrimaryKey("id");
  target.AddForeignKey("mid_id", 1);
  db.AddRelation(std::move(target));
  db.SetTarget(2);

  Relation& leaf_rel = db.mutable_relation(0);
  for (int i = 0; i < 2; ++i) {
    TupleId t = leaf_rel.AddTuple();
    leaf_rel.SetInt(t, 0, t);
  }
  Relation& mid_rel = db.mutable_relation(1);
  const int64_t mid_to_leaf[] = {0, 0, 1};
  for (int64_t l : mid_to_leaf) {
    TupleId t = mid_rel.AddTuple();
    mid_rel.SetInt(t, 0, t);
    mid_rel.SetInt(t, 1, l);
  }
  Relation& target_rel = db.mutable_relation(2);
  const int64_t target_to_mid[] = {0, 1, 2, 2};
  std::vector<ClassId> labels;
  for (int64_t m : target_to_mid) {
    TupleId t = target_rel.AddTuple();
    target_rel.SetInt(t, 0, t);
    target_rel.SetInt(t, 1, m);
    labels.push_back(0);
  }
  db.SetLabels(labels, 2);
  ASSERT_TRUE(db.Finalize().ok());

  const JoinEdge* to_mid = FindEdge(db, 2, 1, 1, 0);
  const JoinEdge* to_leaf = FindEdge(db, 1, 1, 0, 0);
  ASSERT_NE(to_mid, nullptr);
  ASSERT_NE(to_leaf, nullptr);

  PropagationResult at_mid = PropagateIds(db, *to_mid, RootStore(db), nullptr);
  PropagationResult at_leaf =
      PropagateIds(db, *to_leaf, at_mid.idsets, nullptr);
  ASSERT_TRUE(at_leaf.ok);
  // Leaf 0 <- mids {0,1} <- targets {0,1}; leaf 1 <- mid 2 <- targets {2,3}.
  EXPECT_EQ(at_leaf.idsets.ToVector(0), (IdSet{0, 1}));
  EXPECT_EQ(at_leaf.idsets.ToVector(1), (IdSet{2, 3}));
}

// Property test: on random databases, PropagateIds agrees with a
// brute-force nested-loop oracle on every edge, with and without an alive
// mask.
class PropagationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropagationPropertyTest, MatchesBruteForceOnEveryEdge) {
  Database db = MakeRandomDatabase(GetParam());
  IdSetStore root = RootStore(db);
  std::vector<IdSet> root_v = IdSetsFromStore(root);

  Rng rng(GetParam() ^ 0xabcd);
  std::vector<uint8_t> alive(root.num_sets());
  for (auto& a : alive) a = rng.Bernoulli(0.7);

  for (const JoinEdge& edge : db.edges()) {
    if (edge.from_rel != db.target()) continue;
    PropagationResult got = PropagateIds(db, edge, root, nullptr);
    ASSERT_TRUE(got.ok);
    EXPECT_EQ(IdSetsFromStore(got.idsets),
              BruteForcePropagate(db, edge, root_v, nullptr));

    PropagationResult masked = PropagateIds(db, edge, root, &alive);
    ASSERT_TRUE(masked.ok);
    EXPECT_EQ(IdSetsFromStore(masked.idsets),
              BruteForcePropagate(db, edge, root_v, &alive));

    // Second hop from the reached relation, exercising Lemma 2.
    for (int32_t e2 : db.OutEdges(edge.to_rel)) {
      const JoinEdge& second = db.edges()[static_cast<size_t>(e2)];
      PropagationResult hop2 = PropagateIds(db, second, got.idsets, nullptr);
      ASSERT_TRUE(hop2.ok);
      EXPECT_EQ(IdSetsFromStore(hop2.idsets),
                BruteForcePropagate(db, second, IdSetsFromStore(got.idsets),
                                    nullptr));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace crossmine
