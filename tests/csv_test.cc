#include "relational/csv.h"

#include <gtest/gtest.h>

#include "storage/storage.h"

#include <filesystem>
#include <fstream>

#include "datagen/synthetic.h"
#include "test_util.h"

namespace crossmine {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/csv_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ + "/" + name);
    out << content;
  }

  std::string dir_;
};

TEST_F(CsvTest, RoundTripPreservesEverything) {
  testing::Fig2Database f = testing::MakeFig2Database();
  ASSERT_TRUE(storage::SaveDatabaseCsv(f.db, dir_).ok());

  StatusOr<Database> loaded = storage::LoadDatabaseCsv(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Database& db = *loaded;

  EXPECT_EQ(db.num_relations(), f.db.num_relations());
  EXPECT_EQ(db.target(), f.db.target());
  EXPECT_EQ(db.num_classes(), 2);
  EXPECT_EQ(db.labels(), f.db.labels());
  EXPECT_TRUE(db.finalized());

  for (RelId r = 0; r < db.num_relations(); ++r) {
    const Relation& a = f.db.relation(r);
    const Relation& b = db.relation(r);
    ASSERT_EQ(a.num_tuples(), b.num_tuples());
    EXPECT_EQ(a.name(), b.name());
    ASSERT_EQ(a.schema().num_attrs(), b.schema().num_attrs());
    for (AttrId attr = 0; attr < a.schema().num_attrs(); ++attr) {
      EXPECT_EQ(a.schema().attr(attr).name, b.schema().attr(attr).name);
      EXPECT_EQ(a.schema().attr(attr).kind, b.schema().attr(attr).kind);
      for (TupleId t = 0; t < a.num_tuples(); ++t) {
        if (a.schema().IsIntAttr(attr)) {
          EXPECT_EQ(a.Int(t, attr), b.Int(t, attr));
        } else {
          EXPECT_DOUBLE_EQ(a.Double(t, attr), b.Double(t, attr));
        }
      }
    }
  }
  // Dictionary strings survive.
  EXPECT_EQ(db.relation(f.account).CategoryName(f.account_frequency,
                                                f.monthly),
            "monthly");
}

TEST_F(CsvTest, RoundTripJoinGraphIdentical) {
  testing::Fig2Database f = testing::MakeFig2Database();
  ASSERT_TRUE(storage::SaveDatabaseCsv(f.db, dir_).ok());
  StatusOr<Database> loaded = storage::LoadDatabaseCsv(dir_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->edges().size(), f.db.edges().size());
  for (size_t i = 0; i < f.db.edges().size(); ++i) {
    EXPECT_EQ(loaded->edges()[i].from_rel, f.db.edges()[i].from_rel);
    EXPECT_EQ(loaded->edges()[i].to_attr, f.db.edges()[i].to_attr);
    EXPECT_EQ(loaded->edges()[i].kind, f.db.edges()[i].kind);
  }
}

TEST_F(CsvTest, MissingDirectoryFails) {
  StatusOr<Database> loaded = storage::LoadDatabaseCsv(dir_ + "/nonexistent");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, MissingClassesDirectiveFails) {
  WriteFile("schema.txt", "relation A target\nattr id pk\n");
  WriteFile("A.csv", "id,__class__\n0,0\n");
  StatusOr<Database> loaded = storage::LoadDatabaseCsv(dir_);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(CsvTest, UnknownDirectiveFails) {
  WriteFile("schema.txt", "classes 2\nbogus A\n");
  StatusOr<Database> loaded = storage::LoadDatabaseCsv(dir_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, NoTargetFails) {
  WriteFile("schema.txt", "classes 2\nrelation A\nattr id pk\n");
  WriteFile("A.csv", "id\n0\n");
  StatusOr<Database> loaded = storage::LoadDatabaseCsv(dir_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, UnknownFkTargetFails) {
  WriteFile("schema.txt",
            "classes 2\nrelation A target\nattr id pk\nattr x fk Ghost\n");
  StatusOr<Database> loaded = storage::LoadDatabaseCsv(dir_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, ColumnCountMismatchFails) {
  WriteFile("schema.txt",
            "classes 2\nrelation A target\nattr id pk\nattr c cat\n");
  WriteFile("A.csv", "id,c,__class__\n0,red\n");
  StatusOr<Database> loaded = storage::LoadDatabaseCsv(dir_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, BadNumericValueFails) {
  WriteFile("schema.txt",
            "classes 2\nrelation A target\nattr id pk\nattr x num\n");
  WriteFile("A.csv", "id,x,__class__\n0,notanumber,0\n");
  StatusOr<Database> loaded = storage::LoadDatabaseCsv(dir_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, BadLabelFails) {
  WriteFile("schema.txt", "classes 2\nrelation A target\nattr id pk\n");
  WriteFile("A.csv", "id,__class__\n0,9\n");
  StatusOr<Database> loaded = storage::LoadDatabaseCsv(dir_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, EmptyKeyCellLoadsAsNull) {
  WriteFile("schema.txt",
            "classes 2\nrelation B\nattr id pk\n"
            "relation A target\nattr id pk\nattr b fk B\n");
  WriteFile("B.csv", "id\n0\n");
  WriteFile("A.csv", "id,b,__class__\n0,,1\n");
  StatusOr<Database> loaded = storage::LoadDatabaseCsv(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->relation(1).Int(0, 1), kNullValue);
}

TEST_F(CsvTest, QuotedFieldsWithCommas) {
  WriteFile("schema.txt",
            "classes 2\nrelation A target\nattr id pk\nattr c cat\n");
  WriteFile("A.csv", "id,c,__class__\n0,\"red, dark\",1\n1,\"say \"\"hi\"\"\",0\n");
  StatusOr<Database> loaded = storage::LoadDatabaseCsv(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Relation& a = loaded->relation(0);
  EXPECT_EQ(a.CategoryName(1, a.Int(0, 1)), "red, dark");
  EXPECT_EQ(a.CategoryName(1, a.Int(1, 1)), "say \"hi\"");
}

TEST_F(CsvTest, CommentsAndBlankLinesIgnoredInSchema) {
  WriteFile("schema.txt",
            "# a comment\n\nclasses 2\nrelation A target\nattr id pk\n");
  WriteFile("A.csv", "id,__class__\n0,1\n");
  StatusOr<Database> loaded = storage::LoadDatabaseCsv(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->labels()[0], 1);
}

TEST_F(CsvTest, SyntheticRoundTripTrainsIdentically) {
  // End-to-end: generate, save, load — the loaded DB must be structurally
  // identical (same tuple counts, labels, edges).
  datagen::SyntheticConfig cfg;
  cfg.num_relations = 5;
  cfg.expected_tuples = 60;
  cfg.seed = 77;
  StatusOr<Database> gen = datagen::GenerateSyntheticDatabase(cfg);
  ASSERT_TRUE(gen.ok());
  ASSERT_TRUE(storage::SaveDatabaseCsv(*gen, dir_).ok());
  StatusOr<Database> loaded = storage::LoadDatabaseCsv(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->TotalTuples(), gen->TotalTuples());
  EXPECT_EQ(loaded->labels(), gen->labels());
  EXPECT_EQ(loaded->edges().size(), gen->edges().size());
}

}  // namespace
}  // namespace crossmine
