// The fault matrix: every registered fault point, armed at its call site,
// must yield a clean non-OK Status (persistence) or a clean wire error /
// connection close (serving) — never a crash, a hang, or silently wrong
// bytes. With no fault armed, behavior must be byte-identical to a run
// without the fault-injection substrate.
//
// The first test enumerates FaultRegistry::Names() against the list of
// points this file drives; registering a new point without adding a driver
// here is a test failure by construction.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/faultpoint.h"
#include "common/fs.h"
#include "common/shutdown.h"
#include "core/classifier.h"
#include "core/model_io.h"
#include "relational/csv.h"
#include "serve/protocol.h"
#include "shard/partition.h"
#include "shard/supervisor.h"
#include "shard/worker.h"
#include "storage/storage.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "test_util.h"

namespace crossmine {
namespace {

using serve::JsonValue;
using testing::Fig2Database;
using testing::MakeFig2Database;

FaultRegistry& Registry() { return FaultRegistry::Instance(); }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good()) << path;
}

/// A fresh per-test scratch directory under the gtest temp dir.
std::string ScratchDir(const char* tag) {
  std::string dir = ::testing::TempDir() + "/fault_matrix_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

bool HasTempLeftovers(const std::string& dir) {
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().find(".tmp.") != std::string::npos) {
      return true;
    }
  }
  return false;
}

CrossMineClassifier TrainedModel(const Database& db) {
  CrossMineClassifier model;
  std::vector<TupleId> all;
  for (TupleId t = 0; t < db.target_relation().num_tuples(); ++t) {
    all.push_back(t);
  }
  CM_CHECK(model.Train(db, all).ok());
  return model;
}

/// Every fixture disarms on both ends so an assertion failure in one test
/// can never leave a plan armed for the next.
class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry().DisarmAll(); }
  void TearDown() override { Registry().DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Registry completeness: the matrix below must cover every linked-in point.

TEST_F(FaultMatrixTest, EveryRegisteredPointHasAMatrixDriver) {
  const std::set<std::string> covered = {
      "columnar.load.mmap",  "columnar.load.open",  "columnar.load.read",
      "columnar.save.fsync", "columnar.save.open",  "columnar.save.rename",
      "columnar.save.write", "csv.data.open",       "csv.data.read",
      "csv.schema.open",     "csv.schema.read",     "csv.save.fsync",
      "csv.save.open",       "csv.save.rename",     "csv.save.write",
      "model_io.load.open",  "model_io.load.read",  "model_io.save.fsync",
      "model_io.save.open",  "model_io.save.rename","model_io.save.write",
      "serve.admit",         "serve.execute",       "shard.checkpoint.fsync",
      "shard.checkpoint.read","shard.checkpoint.rename",
      "shard.checkpoint.write","shard.worker.spawn", "shard.worker.wait",
      "tcp.accept",
      "tcp.accept.poll",     "tcp.conn.read",       "tcp.send",
  };
  for (const std::string& name : Registry().Names()) {
    EXPECT_TRUE(covered.count(name) > 0)
        << "fault point '" << name
        << "' is registered but has no driver in fault_matrix_test.cc — "
           "add one (injected fault must produce a clean non-OK Status or "
           "wire error)";
  }
  for (const std::string& name : covered) {
    EXPECT_NE(Registry().Find(name), nullptr)
        << "expected fault point '" << name << "' is not registered";
  }
}

TEST_F(FaultMatrixTest, PlanParsingRejectsBadInput) {
  EXPECT_FALSE(Registry().ApplyPlan("no.such.point=EIO").ok());
  EXPECT_FALSE(Registry().ApplyPlan("csv.schema.open").ok());
  EXPECT_FALSE(Registry().ApplyPlan("csv.schema.open=NOT_AN_ERRNO").ok());
  EXPECT_FALSE(Registry().ApplyPlan("csv.schema.open@zero=EIO").ok());
  EXPECT_TRUE(Registry().ApplyPlan("").ok());
  // Multi-entry plans arm every named point.
  ASSERT_TRUE(
      Registry().ApplyPlan("csv.schema.open@5=EIO;model_io.load.open@5=EIO")
          .ok());
  Registry().DisarmAll();
}

// ---------------------------------------------------------------------------
// Persistence: model save / load.

TEST_F(FaultMatrixTest, ModelSaveFaultsLeaveOldFileIntact) {
  Fig2Database fig = MakeFig2Database();
  CrossMineClassifier model = TrainedModel(fig.db);
  std::string dir = ScratchDir("model_save");
  std::string path = dir + "/model.cmm";

  ASSERT_TRUE(SaveModel(model, fig.db, path).ok());
  std::string baseline = ReadFile(path);
  ASSERT_FALSE(baseline.empty());

  for (const char* point : {"model_io.save.open", "model_io.save.write",
                            "model_io.save.fsync", "model_io.save.rename"}) {
    ASSERT_TRUE(Registry().ApplyPlan(std::string(point) + "@1=EIO").ok());
    Status st = SaveModel(model, fig.db, path);
    EXPECT_FALSE(st.ok()) << point << " armed but SaveModel succeeded";
    EXPECT_EQ(ReadFile(path), baseline)
        << point << ": failed save must leave the previous model intact";
    EXPECT_FALSE(HasTempLeftovers(dir))
        << point << ": failed save leaked a temp file";
    Registry().DisarmAll();
    // Disarmed rerun: byte-identical to the baseline save.
    EXPECT_TRUE(SaveModel(model, fig.db, path).ok()) << point;
    EXPECT_EQ(ReadFile(path), baseline) << point;
  }
  EXPECT_TRUE(LoadModel(fig.db, path).ok());
}

TEST_F(FaultMatrixTest, ModelLoadFaultsFailCleanly) {
  Fig2Database fig = MakeFig2Database();
  CrossMineClassifier model = TrainedModel(fig.db);
  std::string path = ScratchDir("model_load") + "/model.cmm";
  ASSERT_TRUE(SaveModel(model, fig.db, path).ok());

  for (const char* point : {"model_io.load.open", "model_io.load.read"}) {
    ASSERT_TRUE(Registry().ApplyPlan(std::string(point) + "@1=EACCES").ok());
    StatusOr<CrossMineClassifier> loaded = LoadModel(fig.db, path);
    EXPECT_FALSE(loaded.ok()) << point << " armed but LoadModel succeeded";
    Registry().DisarmAll();
    EXPECT_TRUE(LoadModel(fig.db, path).ok()) << point;
  }
}

// ---------------------------------------------------------------------------
// Persistence: CSV dataset save / load.

TEST_F(FaultMatrixTest, CsvSaveFaultsLeaveOldFilesIntact) {
  Fig2Database fig = MakeFig2Database();
  std::string dir = ScratchDir("csv_save");
  ASSERT_TRUE(SaveDatabaseCsv(fig.db, dir).ok());
  std::string schema_baseline = ReadFile(dir + "/schema.txt");
  std::string account_baseline = ReadFile(dir + "/Account.csv");
  ASSERT_FALSE(schema_baseline.empty());
  ASSERT_FALSE(account_baseline.empty());

  for (const char* point : {"csv.save.open", "csv.save.write",
                            "csv.save.fsync", "csv.save.rename"}) {
    // Hit 1 is schema.txt — the first file of every dataset save.
    ASSERT_TRUE(Registry().ApplyPlan(std::string(point) + "@1=ENOSPC").ok());
    EXPECT_FALSE(SaveDatabaseCsv(fig.db, dir).ok()) << point;
    EXPECT_EQ(ReadFile(dir + "/schema.txt"), schema_baseline) << point;
    EXPECT_FALSE(HasTempLeftovers(dir)) << point;
    Registry().DisarmAll();
    EXPECT_TRUE(SaveDatabaseCsv(fig.db, dir).ok()) << point;
    EXPECT_EQ(ReadFile(dir + "/schema.txt"), schema_baseline) << point;
  }

  // Hit 2 lands on the first relation file; that file must stay intact too.
  ASSERT_TRUE(Registry().ApplyPlan("csv.save.rename@2=EIO").ok());
  EXPECT_FALSE(SaveDatabaseCsv(fig.db, dir).ok());
  EXPECT_EQ(ReadFile(dir + "/Account.csv"), account_baseline);
  EXPECT_FALSE(HasTempLeftovers(dir));
  Registry().DisarmAll();
  EXPECT_TRUE(SaveDatabaseCsv(fig.db, dir).ok());
  EXPECT_TRUE(LoadDatabaseCsv(dir).ok());
}

TEST_F(FaultMatrixTest, CsvLoadFaultsFailCleanly) {
  Fig2Database fig = MakeFig2Database();
  std::string dir = ScratchDir("csv_load");
  ASSERT_TRUE(SaveDatabaseCsv(fig.db, dir).ok());

  for (const char* point : {"csv.schema.open", "csv.schema.read",
                            "csv.data.open", "csv.data.read"}) {
    ASSERT_TRUE(Registry().ApplyPlan(std::string(point) + "@1=EIO").ok());
    StatusOr<Database> loaded = LoadDatabaseCsv(dir);
    EXPECT_FALSE(loaded.ok()) << point << " armed but LoadDatabaseCsv "
                                          "succeeded";
    Registry().DisarmAll();
    EXPECT_TRUE(LoadDatabaseCsv(dir).ok()) << point;
  }
}

// ---------------------------------------------------------------------------
// Persistence: `.cmdb` columnar save / load.

TEST_F(FaultMatrixTest, ColumnarSaveFaultsLeaveOldFileIntact) {
  Fig2Database fig = MakeFig2Database();
  std::string dir = ScratchDir("columnar_save");
  std::string path = dir + "/db.cmdb";
  ASSERT_TRUE(storage::SaveDatabaseColumnar(fig.db, path).ok());
  std::string baseline = ReadFile(path);
  ASSERT_FALSE(baseline.empty());

  for (const char* point :
       {"columnar.save.open", "columnar.save.write", "columnar.save.fsync",
        "columnar.save.rename"}) {
    ASSERT_TRUE(Registry().ApplyPlan(std::string(point) + "@1=ENOSPC").ok());
    Status st = storage::SaveDatabaseColumnar(fig.db, path);
    EXPECT_FALSE(st.ok()) << point
                          << " armed but SaveDatabaseColumnar succeeded";
    EXPECT_EQ(ReadFile(path), baseline)
        << point << ": failed save must leave the previous file intact";
    EXPECT_FALSE(HasTempLeftovers(dir))
        << point << ": failed save leaked a temp file";
    Registry().DisarmAll();
    // Disarmed rerun: byte-identical to the baseline save.
    EXPECT_TRUE(storage::SaveDatabaseColumnar(fig.db, path).ok()) << point;
    EXPECT_EQ(ReadFile(path), baseline) << point;
  }
  EXPECT_TRUE(storage::OpenDatabaseColumnar(path).ok());
}

TEST_F(FaultMatrixTest, ColumnarLoadFaultsFailCleanly) {
  Fig2Database fig = MakeFig2Database();
  std::string path = ScratchDir("columnar_load") + "/db.cmdb";
  ASSERT_TRUE(storage::SaveDatabaseColumnar(fig.db, path).ok());

  for (const char* point :
       {"columnar.load.open", "columnar.load.mmap", "columnar.load.read"}) {
    ASSERT_TRUE(Registry().ApplyPlan(std::string(point) + "@1=EIO").ok());
    StatusOr<Database> loaded = storage::OpenDatabaseColumnar(path);
    EXPECT_FALSE(loaded.ok())
        << point << " armed but OpenDatabaseColumnar succeeded";
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError) << point;
    Registry().DisarmAll();
    EXPECT_TRUE(storage::OpenDatabaseColumnar(path).ok()) << point;
    // The facade surfaces the same failure: OpenDatabase sniffs the magic
    // out-of-band, so the injected fault hits the columnar loader itself.
    ASSERT_TRUE(Registry().ApplyPlan(std::string(point) + "@1=EIO").ok());
    EXPECT_FALSE(storage::OpenDatabase(path).ok()) << point;
    Registry().DisarmAll();
  }
}

// ---------------------------------------------------------------------------
// Shard process supervision: worker spawn / reap and checkpoint durability.
// (tests/shard_process_test.cc drives these same points end to end against
// the real CLI worker; here each point proves clean in-process failure.)

TEST_F(FaultMatrixTest, ShardWorkerCheckpointFaultsFailCleanly) {
  // Worker-side checkpoint faults, driven through the real TrainShardMain
  // entry over a .cmdb slice: each armed edge fails the worker (exit 1)
  // with no checkpoint and no temp debris; the disarmed rerun publishes a
  // checkpoint that validates against the parent database.
  Fig2Database fig = MakeFig2Database();
  std::string dir = ScratchDir("shard_worker");
  std::string slice = dir + "/slice-0.cmdb";
  std::string ckpt = dir + "/ckpt-0.cmm";
  ASSERT_TRUE(storage::SaveDatabase(fig.db, slice).ok());
  std::string fp = std::to_string(SchemaFingerprint(fig.db));

  auto run_worker = [&]() {
    std::vector<std::string> args = {"crossmine",           "train-shard",
                                     slice,                 ckpt,
                                     "--expect-fingerprint", fp};
    std::vector<char*> argv;
    for (std::string& a : args) argv.push_back(a.data());
    return shard::TrainShardMain(static_cast<int>(argv.size()), argv.data());
  };

  for (const char* point : {"shard.checkpoint.write", "shard.checkpoint.fsync",
                            "shard.checkpoint.rename"}) {
    ASSERT_TRUE(Registry().ApplyPlan(std::string(point) + "@1=EIO").ok());
    EXPECT_EQ(run_worker(), 1) << point << " armed but the worker succeeded";
    EXPECT_FALSE(std::filesystem::exists(ckpt))
        << point << ": failed worker must not publish a checkpoint";
    EXPECT_FALSE(HasTempLeftovers(dir))
        << point << ": failed worker leaked a temp file";
    Registry().DisarmAll();
  }
  EXPECT_EQ(run_worker(), 0);
  EXPECT_TRUE(shard::LoadShardCheckpoint(fig.db, ckpt).ok());
}

TEST_F(FaultMatrixTest, ShardCheckpointReadFaultFailsCleanly) {
  Fig2Database fig = MakeFig2Database();
  CrossMineClassifier model = TrainedModel(fig.db);
  std::string path = ScratchDir("shard_read") + "/ckpt-0.cmm";
  WriteFile(path, SerializeModel(model, fig.db));

  ASSERT_TRUE(Registry().ApplyPlan("shard.checkpoint.read@1=EIO").ok());
  StatusOr<CrossMineClassifier> loaded =
      shard::LoadShardCheckpoint(fig.db, path);
  EXPECT_FALSE(loaded.ok()) << "read fault armed but the checkpoint loaded";
  Registry().DisarmAll();
  EXPECT_TRUE(shard::LoadShardCheckpoint(fig.db, path).ok());
}

TEST_F(FaultMatrixTest, ShardSupervisorSpawnAndWaitFaultsFailCleanly) {
  Fig2Database fig = MakeFig2Database();
  std::vector<TupleId> all;
  for (TupleId t = 0; t < fig.db.target_relation().num_tuples(); ++t) {
    all.push_back(t);
  }
  shard::PartitionOptions popts;
  popts.num_shards = 2;
  StatusOr<std::vector<shard::Shard>> shards =
      shard::PartitionDatabase(fig.db, all, popts);
  ASSERT_TRUE(shards.ok());
  std::vector<int> active;
  for (size_t s = 0; s < shards->size(); ++s) {
    if (!(*shards)[s].parent_ids.empty()) active.push_back(static_cast<int>(s));
  }
  ASSERT_FALSE(active.empty());

  auto run = [&](const char* tag) {
    shard::SupervisorOptions sup;
    sup.run_dir = ScratchDir(tag);
    // A worker that exits 1 without ever checkpointing: every attempt
    // fails, so the run ends in a clean error either way.
    sup.worker_binary = "/bin/false";
    sup.max_attempts = 2;
    sup.backoff_initial_seconds = 0.01;
    sup.backoff_max_seconds = 0.02;
    shard::ShardSupervisor supervisor(sup);
    return supervisor.Run(fig.db, CrossMineOptions{}, *shards, active,
                          nullptr);
  };

  // Persistent spawn faults exhaust every attempt without forking once.
  ASSERT_TRUE(Registry().ApplyPlan("shard.worker.spawn=EAGAIN*99").ok());
  StatusOr<std::vector<std::optional<CrossMineClassifier>>> result =
      run("shard_spawn");
  EXPECT_FALSE(result.ok()) << "spawn fault armed but the run succeeded";
  Registry().DisarmAll();

  // EINTR on the reap loop is absorbed internally (the retry loop exists);
  // the armed window going cold proves the point actually fired.
  FaultPoint* wait_point = Registry().Find("shard.worker.wait");
  ASSERT_NE(wait_point, nullptr);
  ASSERT_TRUE(Registry().ApplyPlan("shard.worker.wait@1=EINTR*2").ok());
  ASSERT_TRUE(wait_point->armed());
  result = run("shard_wait");
  EXPECT_FALSE(result.ok());  // /bin/false never checkpoints
  EXPECT_FALSE(wait_point->armed()) << "wait fault never fired";
  Registry().DisarmAll();
}

TEST_F(FaultMatrixTest, HitWindowTargetsTheKthOperation) {
  Fig2Database fig = MakeFig2Database();
  std::string dir = ScratchDir("hit_window");
  ASSERT_TRUE(SaveDatabaseCsv(fig.db, dir).ok());

  // @2 with the default count of 1: first load clean, second fails, third
  // clean again (the armed window has passed and the point disarmed).
  ASSERT_TRUE(Registry().ApplyPlan("csv.schema.open@2=EACCES").ok());
  EXPECT_TRUE(LoadDatabaseCsv(dir).ok());
  EXPECT_FALSE(LoadDatabaseCsv(dir).ok());
  EXPECT_TRUE(LoadDatabaseCsv(dir).ok());
}

// ---------------------------------------------------------------------------
// Corruption: no byte pattern on disk may load as a wrong model.

TEST_F(FaultMatrixTest, EveryTruncationAndByteFlipOfModelIsRejected) {
  Fig2Database fig = MakeFig2Database();
  CrossMineClassifier model = TrainedModel(fig.db);
  std::string dir = ScratchDir("model_corruption");
  std::string good_path = dir + "/good.cmm";
  std::string bad_path = dir + "/bad.cmm";
  ASSERT_TRUE(SaveModel(model, fig.db, good_path).ok());
  std::string bytes = ReadFile(good_path);
  ASSERT_FALSE(bytes.empty());

  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFile(bad_path, bytes.substr(0, len));
    StatusOr<CrossMineClassifier> loaded = LoadModel(fig.db, bad_path);
    EXPECT_FALSE(loaded.ok())
        << "model truncated to " << len << " of " << bytes.size()
        << " bytes loaded successfully";
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0xFF);
    WriteFile(bad_path, flipped);
    StatusOr<CrossMineClassifier> loaded = LoadModel(fig.db, bad_path);
    EXPECT_FALSE(loaded.ok())
        << "model with byte " << i << " flipped loaded successfully";
  }
  // The untouched file still loads — the rejections above are not a
  // broken loader.
  EXPECT_TRUE(LoadModel(fig.db, good_path).ok());
}

// ---------------------------------------------------------------------------
// Serving seams: injected faults become clean wire errors.

std::string WireErrorCode(const std::string& response) {
  StatusOr<JsonValue> v = serve::ParseJson(response);
  if (!v.ok() || v->kind != JsonValue::Kind::kObject) return "<unparseable>";
  const JsonValue* ok = v->Find("ok");
  if (ok == nullptr || ok->kind != JsonValue::Kind::kBool) {
    return "<unparseable>";
  }
  if (ok->boolean) return "";
  const JsonValue* code = v->Find("code");
  return code != nullptr ? code->string : "<missing code>";
}

TEST_F(FaultMatrixTest, AdmitAndExecuteFaultsAnswerWithWireErrors) {
  Fig2Database fig = MakeFig2Database();
  serve::PredictionServer server(&fig.db, serve::ServerOptions{});
  ASSERT_TRUE(server
                  .AddModel("m", std::make_unique<CrossMineClassifier>(
                                     TrainedModel(fig.db)))
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  const std::string req = "{\"verb\":\"predict\",\"id\":0}";

  ASSERT_TRUE(Registry().ApplyPlan("serve.admit@1=EIO").ok());
  EXPECT_EQ(WireErrorCode(server.Submit(req)), "UNAVAILABLE");
  EXPECT_EQ(WireErrorCode(server.Submit(req)), "");  // disarmed: clean

  ASSERT_TRUE(Registry().ApplyPlan("serve.execute@1=EIO").ok());
  EXPECT_EQ(WireErrorCode(server.Submit(req)), "INTERNAL");
  EXPECT_EQ(WireErrorCode(server.Submit(req)), "");
}

// ---------------------------------------------------------------------------
// TCP transport.

/// Minimal blocking line client with a receive timeout so a server bug
/// fails the test instead of hanging it.
class TestClient {
 public:
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval tv = {10, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool SendLine(const std::string& line) {
    std::string framed = line + "\n";
    size_t off = 0;
    while (off < framed.size()) {
      ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Next response line; false on EOF, error, or the 10 s receive timeout.
  bool RecvLine(std::string* line) {
    for (;;) {
      size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// True if the server terminated the connection without sending more
  /// bytes. A server that aborts mid-read closes with our request still in
  /// its receive queue, which the kernel reports as RST (ECONNRESET) rather
  /// than a FIN/EOF — both count as "the server hung up on us".
  bool SawEof() {
    char c;
    for (;;) {
      ssize_t n = ::read(fd_, &c, 1);
      if (n < 0 && errno == EINTR) continue;
      return n == 0 || (n < 0 && errno == ECONNRESET);
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

class TcpFaultTest : public FaultMatrixTest {
 protected:
  void StartServer(serve::TcpOptions tcp_options) {
    fig_ = std::make_unique<Fig2Database>(MakeFig2Database());
    server_ =
        std::make_unique<serve::PredictionServer>(&fig_->db,
                                                  serve::ServerOptions{});
    ASSERT_TRUE(server_
                    ->AddModel("m", std::make_unique<CrossMineClassifier>(
                                        TrainedModel(fig_->db)))
                    .ok());
    ASSERT_TRUE(server_->Start().ok());
    tcp_ = std::make_unique<serve::TcpServer>(server_.get(), tcp_options);
    ASSERT_TRUE(tcp_->Listen(0).ok());
    notifier_ = ShutdownNotifier::Install();
    notifier_->ResetForTesting();
    serve_thread_ = std::thread(
        [this] { serve_status_ = tcp_->ServeUntilShutdown(notifier_); });
  }

  /// Requests shutdown and returns the ServeUntilShutdown status.
  Status StopServer() {
    notifier_->RequestShutdown();
    return JoinServer();
  }

  /// Joins without requesting shutdown (for tests where the accept loop
  /// exits on its own).
  Status JoinServer() {
    if (serve_thread_.joinable()) serve_thread_.join();
    return serve_status_;
  }

  void TearDown() override {
    if (serve_thread_.joinable()) {
      notifier_->RequestShutdown();
      serve_thread_.join();
    }
    FaultMatrixTest::TearDown();
  }

  int port() const { return tcp_->port(); }

  std::unique_ptr<Fig2Database> fig_;
  std::unique_ptr<serve::PredictionServer> server_;
  std::unique_ptr<serve::TcpServer> tcp_;
  ShutdownNotifier* notifier_ = nullptr;
  std::thread serve_thread_;
  Status serve_status_;
};

TEST_F(TcpFaultTest, HealthySessionAndGracefulShutdown) {
  StartServer({});
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  ASSERT_TRUE(client.SendLine("{\"verb\":\"health\"}"));
  std::string response;
  ASSERT_TRUE(client.RecvLine(&response));
  EXPECT_EQ(WireErrorCode(response), "");
  EXPECT_TRUE(StopServer().ok());
  EXPECT_TRUE(client.SawEof());
}

TEST_F(TcpFaultTest, IdleTimeoutClosesSilentConnection) {
  serve::TcpOptions options;
  options.idle_timeout_ms = 100;
  StartServer(options);
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  // Send nothing: the server must hang up on its own.
  EXPECT_TRUE(client.SawEof());
  // Active connections are untouched by the deadline as long as they talk.
  TestClient active;
  ASSERT_TRUE(active.Connect(port()));
  ASSERT_TRUE(active.SendLine("{\"verb\":\"health\"}"));
  std::string response;
  ASSERT_TRUE(active.RecvLine(&response));
  EXPECT_EQ(WireErrorCode(response), "");
  EXPECT_TRUE(StopServer().ok());
}

TEST_F(TcpFaultTest, MaxConnectionsShedsWithResourceExhausted) {
  serve::TcpOptions options;
  options.max_connections = 1;
  StartServer(options);

  TestClient first;
  ASSERT_TRUE(first.Connect(port()));
  ASSERT_TRUE(first.SendLine("{\"verb\":\"health\"}"));
  std::string response;
  ASSERT_TRUE(first.RecvLine(&response));  // first is now surely registered

  TestClient second;
  ASSERT_TRUE(second.Connect(port()));
  ASSERT_TRUE(second.RecvLine(&response));
  EXPECT_EQ(WireErrorCode(response), "RESOURCE_EXHAUSTED");
  EXPECT_TRUE(second.SawEof());

  // The surviving connection is unaffected.
  ASSERT_TRUE(first.SendLine("{\"verb\":\"health\"}"));
  ASSERT_TRUE(first.RecvLine(&response));
  EXPECT_EQ(WireErrorCode(response), "");
  EXPECT_TRUE(StopServer().ok());
}

TEST_F(TcpFaultTest, ShortWriteInjectionStillDeliversFullResponses) {
  StartServer({});
  // Cap every send at a single byte for the next 4096 sends: the response
  // writer must loop through partial writes and deliver every byte.
  ASSERT_TRUE(Registry().ApplyPlan("tcp.send=short:1*4096").ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  ASSERT_TRUE(client.SendLine("{\"verb\":\"predict\",\"id\":0}"));
  std::string response;
  ASSERT_TRUE(client.RecvLine(&response));
  EXPECT_EQ(WireErrorCode(response), "");
  Registry().DisarmAll();
  EXPECT_TRUE(StopServer().ok());
}

TEST_F(TcpFaultTest, SendFaultClosesConnectionServerSurvives) {
  StartServer({});
  ASSERT_TRUE(Registry().ApplyPlan("tcp.send@1=EPIPE").ok());
  TestClient victim;
  ASSERT_TRUE(victim.Connect(port()));
  ASSERT_TRUE(victim.SendLine("{\"verb\":\"health\"}"));
  EXPECT_TRUE(victim.SawEof());  // response write failed → clean close

  TestClient next;
  ASSERT_TRUE(next.Connect(port()));
  ASSERT_TRUE(next.SendLine("{\"verb\":\"health\"}"));
  std::string response;
  ASSERT_TRUE(next.RecvLine(&response));
  EXPECT_EQ(WireErrorCode(response), "");
  EXPECT_TRUE(StopServer().ok());
}

TEST_F(TcpFaultTest, ReadFaultClosesConnectionServerSurvives) {
  StartServer({});
  ASSERT_TRUE(Registry().ApplyPlan("tcp.conn.read@1=ECONNRESET").ok());
  TestClient victim;
  ASSERT_TRUE(victim.Connect(port()));
  ASSERT_TRUE(victim.SendLine("{\"verb\":\"health\"}"));
  EXPECT_TRUE(victim.SawEof());

  TestClient next;
  ASSERT_TRUE(next.Connect(port()));
  ASSERT_TRUE(next.SendLine("{\"verb\":\"health\"}"));
  std::string response;
  ASSERT_TRUE(next.RecvLine(&response));
  EXPECT_EQ(WireErrorCode(response), "");
  EXPECT_TRUE(StopServer().ok());
}

TEST_F(TcpFaultTest, TransientAcceptErrorKeepsServing) {
  StartServer({});
  // EMFILE on the accept leaves the pending connection in the backlog; the
  // loop logs, continues, and picks it up on the next iteration.
  ASSERT_TRUE(Registry().ApplyPlan("tcp.accept@1=EMFILE").ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(port()));
  ASSERT_TRUE(client.SendLine("{\"verb\":\"health\"}"));
  std::string response;
  ASSERT_TRUE(client.RecvLine(&response));
  EXPECT_EQ(WireErrorCode(response), "");
  EXPECT_TRUE(StopServer().ok());
}

TEST_F(TcpFaultTest, AcceptPollFaultExitsCleanlyWithStatus) {
  // Armed before the accept loop starts: its first poll fails hard. The
  // server must return a non-OK Status — drained and joined, not crashed
  // or hung.
  ASSERT_TRUE(Registry().ApplyPlan("tcp.accept.poll@1=EIO").ok());
  StartServer({});
  Status st = JoinServer();
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace crossmine
