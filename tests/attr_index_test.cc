// AttrIndex correctness: the cached inverted index must list exactly the
// column's non-NULL (value, tuple) pairs in CSR form, promote dense values
// to bitmaps per the break-even rule, and rebuild after mutations. The
// equivalence tests then prove the point of all that machinery: training
// with the bitmap engine on and off produces byte-identical models.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <sstream>
#include <vector>

#include "core/bitmap_ops.h"
#include "core/classifier.h"
#include "core/model_io.h"
#include "datagen/financial.h"
#include "datagen/mutagenesis.h"
#include "datagen/synthetic.h"
#include "relational/database.h"
#include "test_util.h"

namespace crossmine {
namespace {

/// Rebuilds the expected value -> sorted posting map straight from the
/// column, the reference the index is checked against.
std::map<int64_t, std::vector<TupleId>> ReferencePostings(const Relation& rel,
                                                          AttrId a) {
  std::map<int64_t, std::vector<TupleId>> ref;
  const Column<int64_t>& col = rel.IntColumn(a);
  for (TupleId t = 0; t < rel.num_tuples(); ++t) {
    if (col[t] != kNullValue) ref[col[t]].push_back(t);
  }
  return ref;
}

void CheckIndexAgainstColumn(const Relation& rel, AttrId a) {
  std::shared_ptr<const AttrIndex> handle = rel.GetAttrIndex(a);
  const AttrIndex& index = *handle;
  std::map<int64_t, std::vector<TupleId>> ref = ReferencePostings(rel, a);

  ASSERT_EQ(index.num_values(), ref.size()) << rel.name();
  EXPECT_EQ(index.words_per_value,
            bitmap_ops::WordsForBits(rel.num_tuples()));
  EXPECT_TRUE(std::is_sorted(index.values.begin(), index.values.end()));
  ASSERT_EQ(index.offsets.size(), index.num_values() + 1);
  EXPECT_EQ(index.offsets.front(), 0u);
  EXPECT_EQ(index.offsets.back(), index.postings.size());

  // Only literal scoring reads bitmaps, so the unified index promotes them
  // for categorical attributes; key attributes (join-only) never carry one.
  const bool categorical = rel.schema().attr(a).kind == AttrKind::kCategorical;
  const uint32_t break_even =
      std::max<uint32_t>(16, 2 * index.words_per_value);
  auto it = ref.begin();
  for (size_t v = 0; v < index.num_values(); ++v, ++it) {
    EXPECT_EQ(index.values[v], it->first);
    EXPECT_EQ(index.FindValue(it->first), v);
    ASSERT_EQ(index.posting_count(v), it->second.size());
    const TupleId* ids = index.posting(v);
    for (size_t i = 0; i < it->second.size(); ++i) {
      EXPECT_EQ(ids[i], it->second[i]);
    }
    const uint64_t* words = index.posting_words(v);
    if (!categorical) {
      EXPECT_EQ(words, nullptr)
          << rel.name() << ": key attribute carries a dead bitmap";
    } else if (index.posting_count(v) >= break_even) {
      ASSERT_NE(words, nullptr)
          << rel.name() << ": value " << it->first << " with "
          << index.posting_count(v) << " postings missed bitmap promotion";
    }
    if (words != nullptr) {
      // The bitmap is an exact dense rendering of the posting list.
      EXPECT_EQ(bitmap_ops::Popcount(words, index.words_per_value),
                index.posting_count(v));
      for (TupleId id : it->second) {
        EXPECT_TRUE(bitmap_ops::TestBit(words, id));
      }
    }
  }
}

TEST(AttrIndexTest, MatchesColumnOnFig2) {
  testing::Fig2Database f = testing::MakeFig2Database();
  for (RelId r = 0; r < f.db.num_relations(); ++r) {
    const Relation& rel = f.db.relation(r);
    for (AttrId a = 0; a < static_cast<AttrId>(rel.schema().num_attrs());
         ++a) {
      if (!rel.schema().IsIntAttr(a)) continue;
      CheckIndexAgainstColumn(rel, a);
    }
  }
}

TEST(AttrIndexTest, MatchesColumnOnGeneratedDatabases) {
  datagen::SyntheticConfig cfg;
  cfg.num_relations = 6;
  cfg.expected_tuples = 400;  // enough tuples to cross bitmap break-even
  cfg.seed = 29;
  StatusOr<Database> db = datagen::GenerateSyntheticDatabase(cfg);
  ASSERT_TRUE(db.ok());
  bool saw_bitmap = false;
  for (RelId r = 0; r < db->num_relations(); ++r) {
    const Relation& rel = db->relation(r);
    for (AttrId a = 0; a < static_cast<AttrId>(rel.schema().num_attrs());
         ++a) {
      if (!rel.schema().IsIntAttr(a)) continue;
      CheckIndexAgainstColumn(rel, a);
      std::shared_ptr<const AttrIndex> index = rel.GetAttrIndex(a);
      for (size_t v = 0; v < index->num_values(); ++v) {
        saw_bitmap = saw_bitmap || index->posting_words(v) != nullptr;
      }
    }
  }
  EXPECT_TRUE(saw_bitmap)
      << "config never promoted a value to bitmap; the dense path is untested";
}

TEST(AttrIndexTest, CachedUntilMutationThenRebuilt) {
  testing::Fig2Database f = testing::MakeFig2Database();
  Relation& rel = f.db.mutable_relation(f.account);
  std::shared_ptr<const AttrIndex> first = rel.GetAttrIndex(f.account_frequency);
  // Same artifact back while the relation is untouched.
  EXPECT_EQ(rel.GetAttrIndex(f.account_frequency).get(), first.get());

  int64_t old = rel.Int(0, f.account_frequency);
  int64_t moved = old + 1000;
  rel.SetInt(0, f.account_frequency, moved);
  std::shared_ptr<const AttrIndex> rebuilt_handle =
      rel.GetAttrIndex(f.account_frequency);
  const AttrIndex& rebuilt = *rebuilt_handle;
  auto pos = std::find(rebuilt.values.begin(), rebuilt.values.end(), moved);
  ASSERT_NE(pos, rebuilt.values.end());
  size_t v = static_cast<size_t>(pos - rebuilt.values.begin());
  ASSERT_EQ(rebuilt.posting_count(v), 1u);
  EXPECT_EQ(rebuilt.posting(v)[0], 0u);
  CheckIndexAgainstColumn(rel, f.account_frequency);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Trains and serializes; the raw container bytes are the comparison unit —
/// any divergence between the two search engines must surface here.
std::string TrainedModelBytes(const Database& db, CrossMineOptions opts,
                              const char* tag) {
  CrossMineClassifier model(opts);
  std::vector<TupleId> all(db.target_relation().num_tuples());
  std::iota(all.begin(), all.end(), 0);
  EXPECT_TRUE(model.Train(db, all).ok());
  std::string path = ::testing::TempDir() + "/attr_index_equiv_" + tag + ".cmm";
  std::filesystem::remove(path);
  EXPECT_TRUE(SaveModel(model, db, path).ok());
  std::string bytes = ReadFileBytes(path);
  EXPECT_FALSE(bytes.empty());
  return bytes;
}

void CheckEngineEquivalence(const Database& db, const char* tag) {
  CrossMineOptions on;
  on.use_bitmap_index = true;
  CrossMineOptions off;
  off.use_bitmap_index = false;
  std::string with_index = TrainedModelBytes(db, on, tag);
  EXPECT_EQ(with_index, TrainedModelBytes(db, off, tag))
      << tag << ": bitmap and scalar engines trained different models";
  // And across thread counts with the index on.
  on.num_threads = 4;
  EXPECT_EQ(with_index, TrainedModelBytes(db, on, tag))
      << tag << ": 4-thread bitmap-indexed model diverged";
}

TEST(AttrIndexEquivalenceTest, SyntheticModelsByteIdentical) {
  datagen::SyntheticConfig cfg;
  cfg.num_relations = 8;
  cfg.expected_tuples = 150;
  cfg.seed = 17;
  StatusOr<Database> db = datagen::GenerateSyntheticDatabase(cfg);
  ASSERT_TRUE(db.ok());
  CheckEngineEquivalence(*db, "synthetic");
}

TEST(AttrIndexEquivalenceTest, FinancialModelsByteIdentical) {
  datagen::FinancialConfig cfg;
  cfg.num_loans = 80;
  cfg.seed = 5;
  StatusOr<Database> db = datagen::GenerateFinancialDatabase(cfg);
  ASSERT_TRUE(db.ok());
  CheckEngineEquivalence(*db, "financial");
}

TEST(AttrIndexEquivalenceTest, MutagenesisModelsByteIdentical) {
  datagen::MutagenesisConfig cfg;
  cfg.num_molecules = 60;
  cfg.seed = 9;
  StatusOr<Database> db = datagen::GenerateMutagenesisDatabase(cfg);
  ASSERT_TRUE(db.ok());
  CheckEngineEquivalence(*db, "mutagenesis");
}

}  // namespace
}  // namespace crossmine
