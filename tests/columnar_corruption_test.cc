// Corruption suite for the `.cmdb` columnar loader, mirroring
// csv_corruption_test.cc: every truncation point and a seeded corpus of
// bit flips must be rejected with a clean DATA_LOSS (or INVALID_ARGUMENT
// when the damage removes the header magic itself) — no byte pattern may
// abort the process, read out of bounds, or open as a silently wrong
// database. The detection chain under test: header magic, fixed trailer at
// EOF (any truncation destroys it), footer crc32, per-segment crc32s, and
// the zero-padding sweep between segments. Run under ASan by
// tools/check_asan.sh, so an out-of-bounds parse is a failure even when it
// does not crash.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include "storage/columnar.h"
#include "test_util.h"

namespace crossmine {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good()) << path;
}

class ColumnarCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test paths: ctest runs cases as parallel processes.
    const std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    path_ = ::testing::TempDir() + "/columnar_corruption_" + name + ".cmdb";
    std::filesystem::remove(path_);
    testing::Fig2Database fig = testing::MakeFig2Database();
    ASSERT_TRUE(storage::SaveDatabaseColumnar(fig.db, path_).ok());
    pristine_ = ReadFile(path_);
    ASSERT_GT(pristine_.size(), 40u);  // header + at least the trailer
    ASSERT_TRUE(storage::OpenDatabaseColumnar(path_).ok());
  }

  /// The file must fail to open, and with DATA_LOSS whenever the header
  /// magic survived the damage — corruption is never misreported as a
  /// usage error.
  void ExpectRejected(const std::string& what, bool magic_intact) {
    StatusOr<Database> db = storage::OpenDatabaseColumnar(path_);
    ASSERT_FALSE(db.ok()) << what << ": corrupted .cmdb opened successfully";
    if (magic_intact) {
      EXPECT_EQ(db.status().code(), StatusCode::kDataLoss)
          << what << ": " << db.status().ToString();
    }
  }

  std::string path_;
  std::string pristine_;
};

TEST_F(ColumnarCorruptionTest, EveryTruncationPointRejected) {
  // Exhaustive: every proper prefix of the file. The trailer lives at EOF,
  // so each one loses it (or the magic) and must be caught.
  for (size_t len = 0; len < pristine_.size(); ++len) {
    WriteFile(path_, pristine_.substr(0, len));
    ExpectRejected("truncated to " + std::to_string(len) + " bytes",
                   /*magic_intact=*/len >= 8);
  }
}

TEST_F(ColumnarCorruptionTest, SeededBitFlipsRejected) {
  // 400 seeded single-bit flips across the whole file. Every region is
  // covered by a check: magic (prefix compare), segments (crc32), padding
  // (zero sweep), footer (crc32), trailer (magic / bounds / crc / reserved).
  std::mt19937_64 rng(20260808);
  for (int round = 0; round < 400; ++round) {
    size_t offset = static_cast<size_t>(rng() % pristine_.size());
    int bit = static_cast<int>(rng() % 8);
    std::string mutated = pristine_;
    mutated[offset] = static_cast<char>(mutated[offset] ^ (1 << bit));
    WriteFile(path_, mutated);
    ExpectRejected("bit " + std::to_string(bit) + " flipped at offset " +
                       std::to_string(offset),
                   /*magic_intact=*/offset >= 8);
  }
}

TEST_F(ColumnarCorruptionTest, AppendedGarbageRejected) {
  // Extra bytes after the trailer shift it away from EOF.
  WriteFile(path_, pristine_ + std::string(17, 'x'));
  ExpectRejected("garbage appended after trailer", /*magic_intact=*/true);
}

TEST_F(ColumnarCorruptionTest, EmptyAndNonMagicFilesRejectedAsNotCmdb) {
  WriteFile(path_, "");
  StatusOr<Database> empty = storage::OpenDatabaseColumnar(path_);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  WriteFile(path_, "this is just a text file, not a database\n");
  StatusOr<Database> text = storage::OpenDatabaseColumnar(path_);
  ASSERT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ColumnarCorruptionTest, MissingFileIsIoErrorNotDataLoss) {
  std::filesystem::remove(path_);
  StatusOr<Database> db = storage::OpenDatabaseColumnar(path_);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kIoError);
}

TEST_F(ColumnarCorruptionTest, FlipsInColumnDataSlipPastWithVerifyOff) {
  // Documents the verify_checksums=false contract: structural checks
  // (trailer, footer crc, bounds, dictionary decode) still run, but a flip
  // inside raw column bytes is on the caller. Find a data byte whose flip
  // opens fine with verification off yet is caught with it on.
  storage::ColumnarOpenOptions lax;
  lax.verify_checksums = false;
  // Offset 64: the first segment starts at the first alignment boundary
  // past the header, well clear of footer and trailer.
  std::string mutated = pristine_;
  mutated[64] = static_cast<char>(mutated[64] ^ 0x40);
  WriteFile(path_, mutated);
  EXPECT_FALSE(storage::OpenDatabaseColumnar(path_).ok());
  EXPECT_TRUE(storage::OpenDatabaseColumnar(path_, lax).ok());
}

}  // namespace
}  // namespace crossmine
