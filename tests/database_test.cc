#include "relational/database.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace crossmine {
namespace {

using testing::MakeFig2Database;

Database MakeUnfinalized() {
  Database db;
  RelationSchema a("A");
  a.AddPrimaryKey("id");
  db.AddRelation(std::move(a));
  RelationSchema b("B");
  b.AddPrimaryKey("id");
  b.AddForeignKey("a_id", 0);
  db.AddRelation(std::move(b));
  return db;
}

TEST(DatabaseTest, FindRelation) {
  Database db = MakeUnfinalized();
  EXPECT_EQ(db.FindRelation("A"), 0);
  EXPECT_EQ(db.FindRelation("B"), 1);
  EXPECT_EQ(db.FindRelation("C"), kInvalidRel);
}

TEST(DatabaseTest, FinalizeRequiresTarget) {
  Database db = MakeUnfinalized();
  Status st = db.Finalize();
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(DatabaseTest, FinalizeRequiresTargetPrimaryKey) {
  Database db;
  RelationSchema t("T");
  t.AddCategorical("c");  // no pk
  db.AddRelation(std::move(t));
  db.SetTarget(0);
  db.SetLabels({}, 2);
  EXPECT_EQ(db.Finalize().code(), StatusCode::kFailedPrecondition);
}

TEST(DatabaseTest, FinalizeRequiresParallelLabels) {
  Database db = MakeUnfinalized();
  db.SetTarget(0);
  db.mutable_relation(0).AddTuple();
  db.SetLabels({}, 2);  // 1 tuple, 0 labels
  EXPECT_EQ(db.Finalize().code(), StatusCode::kFailedPrecondition);
}

TEST(DatabaseTest, FinalizeRejectsOutOfRangeLabels) {
  Database db = MakeUnfinalized();
  db.SetTarget(0);
  db.mutable_relation(0).AddTuple();
  db.SetLabels({5}, 2);
  EXPECT_EQ(db.Finalize().code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, FinalizeRejectsFkToRelationWithoutPk) {
  Database db;
  RelationSchema t("T");
  t.AddPrimaryKey("id");
  t.AddForeignKey("weird", 1);
  db.AddRelation(std::move(t));
  RelationSchema nopk("NoPk");
  nopk.AddCategorical("c");
  db.AddRelation(std::move(nopk));
  db.SetTarget(0);
  db.SetLabels({}, 2);
  EXPECT_EQ(db.Finalize().code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, FinalizeIdempotent) {
  testing::Fig2Database f = MakeFig2Database();
  EXPECT_TRUE(f.db.finalized());
  EXPECT_TRUE(f.db.Finalize().ok());
}

TEST(DatabaseTest, JoinGraphHasBothDirectionsOfPkFk) {
  testing::Fig2Database f = MakeFig2Database();
  bool fk_to_pk = false, pk_to_fk = false;
  for (const JoinEdge& e : f.db.edges()) {
    if (e.from_rel == f.loan && e.from_attr == f.loan_account &&
        e.to_rel == f.account && e.kind == JoinKind::kFkToPk) {
      fk_to_pk = true;
    }
    if (e.from_rel == f.account && e.to_rel == f.loan &&
        e.to_attr == f.loan_account && e.kind == JoinKind::kPkToFk) {
      pk_to_fk = true;
    }
  }
  EXPECT_TRUE(fk_to_pk);
  EXPECT_TRUE(pk_to_fk);
}

TEST(DatabaseTest, JoinGraphFkFkEdges) {
  // Two relations with FKs into the same relation produce FK-FK edges in
  // both directions (e.g. Loan.account_id ⋈ Order.account_id in the paper).
  Database db;
  RelationSchema acc("Account");
  acc.AddPrimaryKey("id");
  db.AddRelation(std::move(acc));
  RelationSchema loan("Loan");
  loan.AddPrimaryKey("id");
  AttrId loan_fk = loan.AddForeignKey("account_id", 0);
  db.AddRelation(std::move(loan));
  RelationSchema ord("Order");
  ord.AddPrimaryKey("id");
  AttrId ord_fk = ord.AddForeignKey("account_id", 0);
  db.AddRelation(std::move(ord));
  db.SetTarget(1);
  db.SetLabels({}, 2);
  ASSERT_TRUE(db.Finalize().ok());

  int fkfk = 0;
  bool loan_to_order = false;
  for (const JoinEdge& e : db.edges()) {
    if (e.kind != JoinKind::kFkToFk) continue;
    ++fkfk;
    if (e.from_rel == 1 && e.from_attr == loan_fk && e.to_rel == 2 &&
        e.to_attr == ord_fk) {
      loan_to_order = true;
    }
  }
  EXPECT_EQ(fkfk, 2);
  EXPECT_TRUE(loan_to_order);
}

TEST(DatabaseTest, JoinGraphFkFkWithinOneRelation) {
  // Two FKs of the same relation referencing the same PK also join.
  Database db;
  RelationSchema person("Person");
  person.AddPrimaryKey("id");
  db.AddRelation(std::move(person));
  RelationSchema edge("Friendship");
  edge.AddPrimaryKey("id");
  edge.AddForeignKey("a", 0);
  edge.AddForeignKey("b", 0);
  db.AddRelation(std::move(edge));
  db.SetTarget(0);
  db.SetLabels({}, 2);
  ASSERT_TRUE(db.Finalize().ok());

  int self_fkfk = 0;
  for (const JoinEdge& e : db.edges()) {
    if (e.kind == JoinKind::kFkToFk && e.from_rel == 1 && e.to_rel == 1) {
      EXPECT_NE(e.from_attr, e.to_attr);
      ++self_fkfk;
    }
  }
  EXPECT_EQ(self_fkfk, 2);
}

TEST(DatabaseTest, OutEdgesConsistentWithEdges) {
  testing::Fig2Database f = MakeFig2Database();
  size_t total = 0;
  for (RelId r = 0; r < f.db.num_relations(); ++r) {
    for (int32_t e : f.db.OutEdges(r)) {
      EXPECT_EQ(f.db.edges()[static_cast<size_t>(e)].from_rel, r);
      ++total;
    }
  }
  EXPECT_EQ(total, f.db.edges().size());
}

TEST(DatabaseTest, TotalTuples) {
  testing::Fig2Database f = MakeFig2Database();
  EXPECT_EQ(f.db.TotalTuples(), 9u);  // 5 loans + 4 accounts
}

TEST(DatabaseTest, AddRelationAfterFinalizeAborts) {
  testing::Fig2Database f = MakeFig2Database();
  RelationSchema extra("X");
  EXPECT_DEATH(f.db.AddRelation(std::move(extra)), "Finalize");
}

TEST(DatabaseTest, LabelsAccessors) {
  testing::Fig2Database f = MakeFig2Database();
  EXPECT_EQ(f.db.num_classes(), 2);
  EXPECT_EQ(f.db.labels().size(), 5u);
  EXPECT_EQ(f.db.labels()[0], 1);
  EXPECT_EQ(f.db.labels()[2], 0);
}

}  // namespace
}  // namespace crossmine
