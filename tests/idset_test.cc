#include "core/idset.h"

#include <gtest/gtest.h>

namespace crossmine {
namespace {

TEST(IdSetTest, NormalizeSortsAndDedupes) {
  IdSet s{5, 1, 3, 1, 5};
  NormalizeIdSet(&s);
  EXPECT_EQ(s, (IdSet{1, 3, 5}));
}

TEST(IdSetTest, NormalizeEmpty) {
  IdSet s;
  NormalizeIdSet(&s);
  EXPECT_TRUE(s.empty());
}

TEST(IdSetTest, UnionIntoEmpty) {
  IdSet dst;
  UnionInPlace(&dst, {1, 2, 3});
  EXPECT_EQ(dst, (IdSet{1, 2, 3}));
}

TEST(IdSetTest, UnionFromEmptyNoop) {
  IdSet dst{1, 2};
  UnionInPlace(&dst, {});
  EXPECT_EQ(dst, (IdSet{1, 2}));
}

TEST(IdSetTest, UnionMergesDisjoint) {
  IdSet dst{1, 4};
  UnionInPlace(&dst, {2, 3, 5});
  EXPECT_EQ(dst, (IdSet{1, 2, 3, 4, 5}));
}

TEST(IdSetTest, UnionDeduplicatesOverlap) {
  IdSet dst{1, 2, 3};
  UnionInPlace(&dst, {2, 3, 4});
  EXPECT_EQ(dst, (IdSet{1, 2, 3, 4}));
}

TEST(IdSetTest, FilterIdSetDropsDeadIds) {
  IdSet s{0, 1, 2, 3, 4};
  std::vector<uint8_t> alive{1, 0, 1, 0, 1};
  FilterIdSet(&s, alive);
  EXPECT_EQ(s, (IdSet{0, 2, 4}));
}

TEST(IdSetTest, FilterIdSetsShrinksEmptied) {
  std::vector<IdSet> sets{{0, 1}, {1}, {}};
  std::vector<uint8_t> alive{1, 0};
  FilterIdSets(&sets, alive);
  EXPECT_EQ(sets[0], (IdSet{0}));
  EXPECT_TRUE(sets[1].empty());
  EXPECT_EQ(sets[1].capacity(), 0u);  // storage released
  EXPECT_TRUE(sets[2].empty());
}

TEST(IdSetTest, TotalIds) {
  std::vector<IdSet> sets{{0, 1}, {}, {2, 3, 4}};
  EXPECT_EQ(TotalIds(sets), 5u);
  EXPECT_EQ(TotalIds({}), 0u);
}

}  // namespace
}  // namespace crossmine
