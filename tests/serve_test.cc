// PredictionServer coverage through the in-process Submit API — the same
// queue/batch/deadline/drain machinery the TCP shell drives, minus sockets.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/foil.h"
#include "core/classifier.h"
#include "serve/protocol.h"
#include "test_util.h"

namespace crossmine::serve {
namespace {

using crossmine::baselines::FoilClassifier;
using crossmine::testing::Fig2Database;
using crossmine::testing::MakeFig2Database;

std::vector<TupleId> AllIds(const Database& db) {
  std::vector<TupleId> ids;
  for (TupleId t = 0; t < db.target_relation().num_tuples(); ++t) {
    ids.push_back(t);
  }
  return ids;
}

std::unique_ptr<CrossMineClassifier> TrainedCrossMine(const Database& db) {
  auto model = std::make_unique<CrossMineClassifier>();
  CM_CHECK(model->Train(db, AllIds(db)).ok());
  return model;
}

// Parses a response line and returns its JSON object (fails the test on
// malformed output — every server response must be valid JSON).
JsonValue Parsed(const std::string& line) {
  StatusOr<JsonValue> v = ParseJson(line);
  EXPECT_TRUE(v.ok()) << line;
  return v.ok() ? *std::move(v) : JsonValue{};
}

bool IsOk(const std::string& line) {
  const JsonValue v = Parsed(line);
  const JsonValue* ok = v.Find("ok");
  return ok != nullptr && ok->kind == JsonValue::Kind::kBool && ok->boolean;
}

std::string ErrorCode(const std::string& line) {
  const JsonValue v = Parsed(line);
  const JsonValue* code = v.Find("code");
  return code == nullptr ? "" : code->string;
}

class ServeTest : public ::testing::Test {
 protected:
  ServeTest() : fig_(MakeFig2Database()) {}

  /// A started server with one trained CrossMine model named "crossmine".
  std::unique_ptr<PredictionServer> StartedServer(ServerOptions options = {}) {
    auto server = std::make_unique<PredictionServer>(&fig_.db, options);
    CM_CHECK(
        server->AddModel("crossmine", TrainedCrossMine(fig_.db)).ok());
    CM_CHECK(server->Start().ok());
    return server;
  }

  Fig2Database fig_;
};

// ---------------------------------------------------------------------------
// Happy paths

TEST_F(ServeTest, PredictMatchesOfflineModel) {
  auto model = TrainedCrossMine(fig_.db);
  std::vector<ClassId> expected = model->Predict(fig_.db, AllIds(fig_.db));

  auto server = StartedServer();
  for (TupleId t = 0; t < expected.size(); ++t) {
    std::string line = server->Submit("{\"verb\":\"predict\",\"id\":" +
                                      std::to_string(t) + "}");
    ASSERT_TRUE(IsOk(line)) << line;
    EXPECT_DOUBLE_EQ(Parsed(line).Find("prediction")->number,
                     static_cast<double>(expected[t]))
        << line;
  }
  server->Drain();
}

TEST_F(ServeTest, PredictBatchPreservesOrder) {
  auto model = TrainedCrossMine(fig_.db);
  std::vector<TupleId> ids = {4, 0, 2};
  std::vector<ClassId> expected = model->Predict(fig_.db, ids);

  auto server = StartedServer();
  std::string line =
      server->Submit("{\"verb\":\"predict_batch\",\"ids\":[4,0,2]}");
  ASSERT_TRUE(IsOk(line)) << line;
  const JsonValue v = Parsed(line);
  const JsonValue* preds = v.Find("predictions");
  ASSERT_NE(preds, nullptr);
  ASSERT_EQ(preds->array.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_DOUBLE_EQ(preds->array[i].number,
                     static_cast<double>(expected[i]));
  }
}

TEST_F(ServeTest, ExplainReturnsClauseDetail) {
  auto server = StartedServer();
  std::string line = server->Submit("{\"verb\":\"explain\",\"id\":0}");
  ASSERT_TRUE(IsOk(line)) << line;
  const JsonValue v = Parsed(line);
  ASSERT_NE(v.Find("prediction"), nullptr);
  ASSERT_NE(v.Find("satisfied"), nullptr);
  // Clause fields are present exactly when a clause fired.
  const JsonValue* ci = v.Find("clause_index");
  if (ci != nullptr) {
    EXPECT_GE(ci->number, 0.0);
    ASSERT_NE(v.Find("clause"), nullptr);
    EXPECT_FALSE(v.Find("clause")->string.empty());
  } else {
    EXPECT_EQ(v.Find("clause"), nullptr);
  }
  // At least one of the five Fig. 2 tuples must decide via a clause.
  bool any_clause = false;
  for (TupleId t = 0; t < 5; ++t) {
    const JsonValue e = Parsed(server->Submit(
        "{\"verb\":\"explain\",\"id\":" + std::to_string(t) + "}"));
    if (e.Find("clause_index") != nullptr) any_clause = true;
  }
  EXPECT_TRUE(any_clause);
}

TEST_F(ServeTest, ReqIdIsEchoedVerbatim) {
  auto server = StartedServer();
  std::string line =
      server->Submit("{\"verb\":\"predict\",\"id\":1,\"req_id\":\"tag-9\"}");
  EXPECT_EQ(Parsed(line).Find("req_id")->string, "tag-9");
  line = server->Submit("{\"verb\":\"health\",\"req_id\":31}");
  EXPECT_DOUBLE_EQ(Parsed(line).Find("req_id")->number, 31.0);
}

TEST_F(ServeTest, StatsAndHealthAnswerInline) {
  auto server = StartedServer();
  (void)server->Submit("{\"verb\":\"predict\",\"id\":0}");

  std::string stats = server->Submit("{\"verb\":\"stats\"}");
  ASSERT_TRUE(IsOk(stats)) << stats;
  const JsonValue sv = Parsed(stats);
  EXPECT_DOUBLE_EQ(sv.Find("serve.requests.predict")->number, 1.0);
  EXPECT_GE(sv.Find("serve.responses_ok")->number, 1.0);
  ASSERT_NE(sv.Find("serve.queue_depth"), nullptr);

  std::string health = server->Submit("{\"verb\":\"health\"}");
  ASSERT_TRUE(IsOk(health)) << health;
  const JsonValue hv = Parsed(health);
  EXPECT_EQ(hv.Find("status")->string, "serving");
  ASSERT_EQ(hv.Find("models")->array.size(), 1u);
  EXPECT_EQ(hv.Find("models")->array[0].string, "crossmine");
}

// ---------------------------------------------------------------------------
// Error mapping: every bad input answers with a stable code, no crash.

TEST_F(ServeTest, MalformedAndUnknownRequestsAnswerInvalidArgument) {
  auto server = StartedServer();
  for (const char* line :
       {"", "garbage", "{\"verb\":\"predict\"}", "{\"verb\":\"nope\"}",
        "{\"verb\":\"predict\",\"id\":-3}", "[]"}) {
    std::string resp = server->Submit(line);
    EXPECT_FALSE(IsOk(resp)) << resp;
    EXPECT_EQ(ErrorCode(resp), "INVALID_ARGUMENT") << resp;
  }
  // The server is still healthy afterwards.
  EXPECT_TRUE(IsOk(server->Submit("{\"verb\":\"predict\",\"id\":0}")));
}

TEST_F(ServeTest, OutOfRangeTupleIdIsOutOfRange) {
  auto server = StartedServer();
  std::string resp = server->Submit("{\"verb\":\"predict\",\"id\":99}");
  EXPECT_EQ(ErrorCode(resp), "OUT_OF_RANGE") << resp;
  resp = server->Submit("{\"verb\":\"predict_batch\",\"ids\":[0,99]}");
  EXPECT_EQ(ErrorCode(resp), "OUT_OF_RANGE") << resp;
  resp = server->Submit("{\"verb\":\"explain\",\"id\":99}");
  EXPECT_EQ(ErrorCode(resp), "OUT_OF_RANGE") << resp;
}

TEST_F(ServeTest, UnknownModelIsNotFound) {
  auto server = StartedServer();
  std::string resp =
      server->Submit("{\"verb\":\"predict\",\"id\":0,\"model\":\"mystery\"}");
  EXPECT_EQ(ErrorCode(resp), "NOT_FOUND") << resp;
}

TEST_F(ServeTest, OversizedBatchIsRejectedAtAdmission) {
  ServerOptions options;
  options.limits.max_batch_ids = 2;
  auto server = StartedServer(options);
  std::string resp =
      server->Submit("{\"verb\":\"predict_batch\",\"ids\":[0,1,2]}");
  EXPECT_EQ(ErrorCode(resp), "INVALID_ARGUMENT") << resp;
  EXPECT_TRUE(
      IsOk(server->Submit("{\"verb\":\"predict_batch\",\"ids\":[0,1]}")));
}

TEST_F(ServeTest, ExplainOnNonCrossMineModelIsFailedPrecondition) {
  auto server = std::make_unique<PredictionServer>(&fig_.db, ServerOptions{});
  auto foil = std::make_unique<FoilClassifier>();
  CM_CHECK(foil->Train(fig_.db, AllIds(fig_.db)).ok());
  CM_CHECK(server->AddModel("foil", std::move(foil)).ok());
  CM_CHECK(server->Start().ok());

  // predict works through the common interface...
  EXPECT_TRUE(IsOk(server->Submit("{\"verb\":\"predict\",\"id\":0}")));
  // ...but clause-level explanations only exist for CrossMine.
  std::string resp = server->Submit("{\"verb\":\"explain\",\"id\":0}");
  EXPECT_EQ(ErrorCode(resp), "FAILED_PRECONDITION") << resp;
}

// ---------------------------------------------------------------------------
// Registration and life-cycle contract

TEST_F(ServeTest, AddModelValidatesOnceAndRejectsBadRosters) {
  PredictionServer server(&fig_.db, ServerOptions{});
  // Untrained model cannot serve: ValidateForPredict fails at registration,
  // not at the first request.
  EXPECT_EQ(
      server.AddModel("raw", std::make_unique<CrossMineClassifier>()).code(),
      StatusCode::kFailedPrecondition);

  EXPECT_TRUE(server.AddModel("m", TrainedCrossMine(fig_.db)).ok());
  EXPECT_EQ(server.AddModel("m", TrainedCrossMine(fig_.db)).code(),
            StatusCode::kAlreadyExists);

  EXPECT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());  // double Start
  EXPECT_FALSE(server.AddModel("late", TrainedCrossMine(fig_.db)).ok());
  server.Drain();
}

TEST_F(ServeTest, StartWithoutModelsFails) {
  PredictionServer server(&fig_.db, ServerOptions{});
  EXPECT_EQ(server.Start().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeTest, NamedModelSelectsFromRoster) {
  auto server = std::make_unique<PredictionServer>(&fig_.db, ServerOptions{});
  CM_CHECK(server->AddModel("crossmine", TrainedCrossMine(fig_.db)).ok());
  auto foil = std::make_unique<FoilClassifier>();
  CM_CHECK(foil->Train(fig_.db, AllIds(fig_.db)).ok());
  CM_CHECK(server->AddModel("foil", std::move(foil)).ok());
  CM_CHECK(server->Start().ok());

  EXPECT_EQ(server->model_names(),
            (std::vector<std::string>{"crossmine", "foil"}));
  EXPECT_TRUE(IsOk(
      server->Submit("{\"verb\":\"predict\",\"id\":0,\"model\":\"foil\"}")));
  std::string health = server->Submit("{\"verb\":\"health\"}");
  EXPECT_EQ(Parsed(health).Find("models")->array.size(), 2u);
}

// ---------------------------------------------------------------------------
// Queueing: shed, deadlines, drain

TEST_F(ServeTest, FullQueueShedsWithResourceExhausted) {
  ServerOptions options;
  options.max_queue = 2;
  // Not started: admitted requests sit in the queue, making the overflow
  // deterministic.
  PredictionServer server(&fig_.db, options);
  CM_CHECK(server.AddModel("crossmine", TrainedCrossMine(fig_.db)).ok());

  std::future<std::string> a =
      server.SubmitAsync("{\"verb\":\"predict\",\"id\":0}");
  std::future<std::string> b =
      server.SubmitAsync("{\"verb\":\"predict\",\"id\":1}");
  EXPECT_EQ(server.queue_depth(), 2u);

  // Queue is full: the third request is shed immediately.
  std::future<std::string> c =
      server.SubmitAsync("{\"verb\":\"predict\",\"id\":2}");
  ASSERT_EQ(c.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  std::string shed = c.get();
  EXPECT_EQ(ErrorCode(shed), "RESOURCE_EXHAUSTED") << shed;

  // Inline verbs bypass the queue and still answer while it is full.
  std::future<std::string> h =
      server.SubmitAsync("{\"verb\":\"health\"}");
  ASSERT_EQ(h.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_TRUE(IsOk(h.get()));

  // Admitted work still completes once the dispatcher runs.
  CM_CHECK(server.Start().ok());
  EXPECT_TRUE(IsOk(a.get()));
  EXPECT_TRUE(IsOk(b.get()));
  server.Drain();

  const MetricsSnapshot snap = server.StatsSnapshot();
  EXPECT_DOUBLE_EQ(snap.at("serve.sheds"), 1.0);
}

TEST_F(ServeTest, ExpiredDeadlineAnswersDeadlineExceededWithoutPredicting) {
  PredictionServer server(&fig_.db, ServerOptions{});
  CM_CHECK(server.AddModel("crossmine", TrainedCrossMine(fig_.db)).ok());

  std::future<std::string> f = server.SubmitAsync(
      "{\"verb\":\"predict\",\"id\":0,\"deadline_ms\":1}");
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  CM_CHECK(server.Start().ok());

  std::string resp = f.get();
  EXPECT_EQ(ErrorCode(resp), "DEADLINE_EXCEEDED") << resp;
  server.Drain();
  EXPECT_DOUBLE_EQ(server.StatsSnapshot().at("serve.deadline_exceeded"), 1.0);
}

TEST_F(ServeTest, DefaultDeadlineAppliesWhenRequestHasNone) {
  ServerOptions options;
  options.default_deadline_ms = 1;
  PredictionServer server(&fig_.db, options);
  CM_CHECK(server.AddModel("crossmine", TrainedCrossMine(fig_.db)).ok());
  std::future<std::string> f =
      server.SubmitAsync("{\"verb\":\"predict\",\"id\":0}");
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  CM_CHECK(server.Start().ok());
  EXPECT_EQ(ErrorCode(f.get()), "DEADLINE_EXCEEDED");
  server.Drain();
}

TEST_F(ServeTest, DrainRejectsNewWorkButFinishesAdmitted) {
  auto server = StartedServer();
  std::future<std::string> admitted =
      server->SubmitAsync("{\"verb\":\"predict\",\"id\":0}");
  server->Drain();
  EXPECT_TRUE(IsOk(admitted.get()));

  std::string late = server->Submit("{\"verb\":\"predict\",\"id\":1}");
  EXPECT_EQ(ErrorCode(late), "UNAVAILABLE") << late;

  // health still answers, reporting the drain.
  std::string health = server->Submit("{\"verb\":\"health\"}");
  EXPECT_EQ(Parsed(health).Find("status")->string, "draining");

  server->Drain();  // idempotent
}

TEST_F(ServeTest, DrainBeforeStartResolvesQueuedRequests) {
  PredictionServer server(&fig_.db, ServerOptions{});
  CM_CHECK(server.AddModel("crossmine", TrainedCrossMine(fig_.db)).ok());
  std::future<std::string> f =
      server.SubmitAsync("{\"verb\":\"predict\",\"id\":0}");
  server.Drain();  // never started: queued work must not hang
  EXPECT_EQ(ErrorCode(f.get()), "UNAVAILABLE");
}

TEST_F(ServeTest, DestructorDrains) {
  std::future<std::string> f;
  {
    auto server = StartedServer();
    f = server->SubmitAsync("{\"verb\":\"predict\",\"id\":0}");
  }
  EXPECT_TRUE(IsOk(f.get()));
}

// ---------------------------------------------------------------------------
// Determinism: responses are a pure function of (model, db, request).

TEST_F(ServeTest, ResponsesIdenticalAcrossThreadAndBatchConfigurations) {
  std::vector<std::string> requests;
  for (TupleId t = 0; t < 5; ++t) {
    requests.push_back("{\"verb\":\"predict\",\"id\":" + std::to_string(t) +
                       "}");
    requests.push_back("{\"verb\":\"explain\",\"id\":" + std::to_string(t) +
                       "}");
  }
  requests.push_back("{\"verb\":\"predict_batch\",\"ids\":[0,1,2,3,4]}");

  auto run = [&](int threads, int batch_size) {
    ServerOptions options;
    options.threads = threads;
    options.batch_size = batch_size;
    auto server = StartedServer(options);
    // Submit everything concurrently so micro-batches actually form.
    std::vector<std::future<std::string>> futures;
    for (const std::string& r : requests) {
      futures.push_back(server->SubmitAsync(r));
    }
    std::vector<std::string> responses;
    for (std::future<std::string>& f : futures) responses.push_back(f.get());
    server->Drain();
    return responses;
  };

  const std::vector<std::string> base = run(1, 1);
  for (const std::string& line : base) ASSERT_TRUE(IsOk(line)) << line;
  EXPECT_EQ(run(4, 8), base);
  EXPECT_EQ(run(2, 3), base);
}

TEST_F(ServeTest, MixedLoadUnderConcurrencyAnswersEveryRequest) {
  ServerOptions options;
  options.threads = 2;
  options.batch_size = 4;
  options.max_queue = 1024;
  auto server = StartedServer(options);

  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::vector<std::thread> clients;
  std::atomic<int> bad{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        int id = (c + i) % 5;
        std::string line;
        if (i % 7 == 3) {
          line = server->Submit("{\"verb\":\"stats\"}");
        } else if (i % 5 == 2) {
          line = server->Submit("{\"verb\":\"explain\",\"id\":" +
                                std::to_string(id) + "}");
        } else {
          line = server->Submit("{\"verb\":\"predict\",\"id\":" +
                                std::to_string(id) + "}");
        }
        if (!IsOk(line)) bad.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0);

  server->Drain();
  const MetricsSnapshot snap = server->StatsSnapshot();
  EXPECT_DOUBLE_EQ(snap.at("serve.requests"),
                   static_cast<double>(kClients * kPerClient));
  EXPECT_DOUBLE_EQ(snap.at("serve.errors"), 0.0);
  EXPECT_GT(snap.at("serve.batches"), 0.0);
  EXPECT_GE(snap.at("serve.latency_p99_ms"), snap.at("serve.latency_p50_ms"));
}

// ---------------------------------------------------------------------------
// Latency histogram

TEST(LatencyHistogramTest, QuantilesAreMonotoneAndBucketAccurate) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);

  for (int i = 0; i < 90; ++i) h.Record(1e-3);   // ~1 ms
  for (int i = 0; i < 10; ++i) h.Record(100e-3); // ~100 ms
  EXPECT_EQ(h.count(), 100u);

  const double p50 = h.Quantile(0.5);
  const double p99 = h.Quantile(0.99);
  EXPECT_GT(p50, 0.25e-3);
  EXPECT_LT(p50, 4e-3);    // within its log2 bucket of 1 ms
  EXPECT_GT(p99, 25e-3);
  EXPECT_LT(p99, 400e-3);  // within its log2 bucket of 100 ms
  EXPECT_LE(p50, p99);

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

}  // namespace
}  // namespace crossmine::serve
