// Golden-model regression tests: training on fixed generator configs must
// produce models byte-identical to the committed golden files under
// tests/golden/. The goldens were written by the pre-IdSetStore-refactor
// trainer, so these tests prove the arena-backed ID storage (and any later
// storage-layer change) is semantics-preserving down to the serialized
// bytes — at one worker thread and at several.
//
// To regenerate the goldens after an *intentional* model change, run with
// CROSSMINE_WRITE_GOLDEN=1 and commit the rewritten files.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>

#include "core/classifier.h"
#include "core/model_io.h"
#include "datagen/financial.h"
#include "datagen/mutagenesis.h"
#include "datagen/synthetic.h"
#include "relational/index_cache.h"
#include "shard/sharded_trainer.h"

#ifndef CROSSMINE_SOURCE_DIR
#error "golden_model_test needs CROSSMINE_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace crossmine {
namespace {

std::string GoldenPath(const char* name) {
  return std::string(CROSSMINE_SOURCE_DIR) + "/tests/golden/" + name;
}

/// Applies an index-memory budget for one scope and restores the previous
/// one on exit (the IndexCache budget is process-global).
class ScopedIndexBudget {
 public:
  explicit ScopedIndexBudget(uint64_t bytes)
      : previous_(IndexCache::Global().budget_bytes()) {
    IndexCache::Global().SetBudgetBytes(bytes);
  }
  ~ScopedIndexBudget() { IndexCache::Global().SetBudgetBytes(previous_); }

 private:
  uint64_t previous_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Strips container-format framing that postdates the goldens: the v2
/// checksum trailer goes, and the v2 header maps back to v1. The goldens
/// pin *training semantics* (clauses, literals, weights), not the envelope;
/// any change to the normalized payload is still a training divergence.
std::string NormalizeToV1(std::string bytes) {
  const std::string v2_header = "crossmine-model 2\n";
  if (bytes.rfind(v2_header, 0) == 0) {
    bytes.replace(0, v2_header.size(), "crossmine-model 1\n");
  }
  size_t tpos = bytes.rfind("\nchecksum ");
  if (tpos != std::string::npos && bytes.back() == '\n') {
    bytes.erase(tpos + 1);
  }
  return bytes;
}

/// Trains on `db` with `num_threads` workers and returns the model bytes,
/// normalized to the v1 container the goldens were committed in.
std::string TrainedModelBytes(const Database& db, CrossMineOptions opts,
                              int num_threads, const char* tag) {
  opts.num_threads = num_threads;
  CrossMineClassifier model(opts);
  std::vector<TupleId> all(db.target_relation().num_tuples());
  std::iota(all.begin(), all.end(), 0);
  EXPECT_TRUE(model.Train(db, all).ok());
  std::string path = ::testing::TempDir() + "/golden_" + tag + ".cmm";
  std::filesystem::remove(path);
  EXPECT_TRUE(SaveModel(model, db, path).ok());
  return NormalizeToV1(ReadFile(path));
}

/// Trains through the shard-parallel path at `num_shards` and returns the
/// merged model's bytes, normalized like `TrainedModelBytes`. At one shard
/// the partition-train-merge pipeline must collapse to exactly the unsharded
/// computation, so these bytes are held to the same goldens.
std::string ShardedModelBytes(const Database& db, CrossMineOptions opts,
                              int num_shards, const char* tag) {
  shard::ShardOptions sopts;
  sopts.num_shards = num_shards;
  shard::ShardedClassifier model(opts, sopts);
  std::vector<TupleId> all(db.target_relation().num_tuples());
  std::iota(all.begin(), all.end(), 0);
  EXPECT_TRUE(model.Train(db, all).ok());
  std::string path =
      ::testing::TempDir() + "/golden_sharded_" + tag + ".cmm";
  std::filesystem::remove(path);
  EXPECT_TRUE(SaveModel(model.merged_model(), db, path).ok());
  return NormalizeToV1(ReadFile(path));
}

void CheckAgainstGolden(const Database& db, const CrossMineOptions& opts,
                        const char* golden_name) {
  std::string bytes = TrainedModelBytes(db, opts, 1, golden_name);
  ASSERT_FALSE(bytes.empty());

  std::string path = GoldenPath(golden_name);
  if (std::getenv("CROSSMINE_WRITE_GOLDEN") != nullptr) {
    std::filesystem::create_directories(GoldenPath(""));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
    ASSERT_TRUE(out.good()) << "failed writing " << path;
    GTEST_SKIP() << "golden rewritten: " << path;
  }

  std::string golden = ReadFile(path);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << path
                               << " (regenerate with CROSSMINE_WRITE_GOLDEN=1)";
  EXPECT_EQ(bytes, golden)
      << golden_name << ": trained model diverged from the committed golden";

  // The same bytes must come out of a multi-threaded build too.
  EXPECT_EQ(TrainedModelBytes(db, opts, 4, golden_name), golden)
      << golden_name << ": 4-thread model diverged from the committed golden";

  // And out of the shard-parallel path at --shards 1: partition, per-shard
  // training, and the merge's full-train rescore must reproduce the
  // unsharded model byte for byte.
  EXPECT_EQ(ShardedModelBytes(db, opts, 1, golden_name), golden)
      << golden_name
      << ": shards=1 merged model diverged from the committed golden";

  // And under any index-memory budget, at 1 and 4 threads: 64 MiB (holds
  // every artifact at this scale, exercising only the accounting) and a
  // thrash-level 4 KiB (evicts nearly every artifact the moment it is
  // built, so training rebuilds constantly). Eviction may change *when* an
  // index exists, never what it contains.
  for (uint64_t budget : {uint64_t{64} << 20, uint64_t{4096}}) {
    ScopedIndexBudget scoped(budget);
    EXPECT_EQ(TrainedModelBytes(db, opts, 1, golden_name), golden)
        << golden_name << ": model diverged under a " << budget
        << "-byte index budget";
    EXPECT_EQ(TrainedModelBytes(db, opts, 4, golden_name), golden)
        << golden_name << ": 4-thread model diverged under a " << budget
        << "-byte index budget";
  }
}

TEST(GoldenModelTest, SyntheticMatchesPreRefactorGolden) {
  datagen::SyntheticConfig cfg;
  cfg.num_relations = 8;
  cfg.expected_tuples = 150;
  cfg.seed = 17;
  StatusOr<Database> db = datagen::GenerateSyntheticDatabase(cfg);
  ASSERT_TRUE(db.ok());
  CheckAgainstGolden(*db, CrossMineOptions{}, "synthetic_r8_t150_s17.cmm");
}

TEST(GoldenModelTest, SyntheticWithSamplingMatchesPreRefactorGolden) {
  datagen::SyntheticConfig cfg;
  cfg.num_relations = 10;
  cfg.expected_tuples = 200;
  cfg.seed = 23;
  StatusOr<Database> db = datagen::GenerateSyntheticDatabase(cfg);
  ASSERT_TRUE(db.ok());
  CrossMineOptions opts;
  opts.use_sampling = true;
  CheckAgainstGolden(*db, opts, "synthetic_r10_t200_s23_sampling.cmm");
}

TEST(GoldenModelTest, FinancialMatchesPreRefactorGolden) {
  datagen::FinancialConfig cfg;
  cfg.num_loans = 80;
  cfg.seed = 5;
  StatusOr<Database> db = datagen::GenerateFinancialDatabase(cfg);
  ASSERT_TRUE(db.ok());
  CheckAgainstGolden(*db, CrossMineOptions{}, "financial_l80_s5.cmm");
}

TEST(GoldenModelTest, MutagenesisMatchesPreRefactorGolden) {
  datagen::MutagenesisConfig cfg;
  cfg.num_molecules = 60;
  cfg.seed = 9;
  StatusOr<Database> db = datagen::GenerateMutagenesisDatabase(cfg);
  ASSERT_TRUE(db.ok());
  CheckAgainstGolden(*db, CrossMineOptions{}, "mutagenesis_m60_s9.cmm");
}

}  // namespace
}  // namespace crossmine
