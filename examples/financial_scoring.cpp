// Loan-default scoring on the financial database (the paper's Table 2
// scenario): generate a PKDD CUP'99-style banking database, learn a
// CrossMine model with all three literal families, inspect the clauses it
// found, and score a held-out batch of loan applications.
//
// Build & run:  cmake --build build && ./build/examples/financial_scoring

#include <cstdio>

#include "core/classifier.h"
#include "datagen/financial.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"

using namespace crossmine;

int main() {
  // A mid-sized bank: ~20k tuples across the eight Fig. 1 relations.
  datagen::FinancialConfig config;
  config.num_accounts = 1200;
  config.num_clients = 1400;
  config.num_loans = 400;
  StatusOr<Database> db = datagen::GenerateFinancialDatabase(config);
  CM_CHECK_MSG(db.ok(), db.status().ToString().c_str());

  std::printf("Financial database: %d relations, %llu tuples\n",
              db->num_relations(),
              static_cast<unsigned long long>(db->TotalTuples()));
  for (RelId r = 0; r < db->num_relations(); ++r) {
    std::printf("  %-12s %6u tuples\n", db->relation(r).name().c_str(),
                db->relation(r).num_tuples());
  }

  // Hold out every fifth loan as the incoming application batch.
  std::vector<TupleId> train, incoming;
  for (TupleId t = 0; t < db->target_relation().num_tuples(); ++t) {
    (t % 5 == 0 ? incoming : train).push_back(t);
  }

  // All three literal families (categorical, numerical, aggregation) and
  // negative sampling, like the paper's financial experiment.
  CrossMineOptions options;
  options.use_sampling = true;
  CrossMineClassifier model(options);
  Status st = model.Train(*db, train);
  CM_CHECK_MSG(st.ok(), st.ToString().c_str());

  std::printf("\nLearned risk model (%zu clauses). Highlights:\n",
              model.clauses().size());
  int shown = 0;
  for (const Clause& clause : model.clauses()) {
    if (clause.sup_pos < 10) continue;  // show the broad clauses only
    std::printf("  [acc=%.2f, support=%g] %s\n", clause.accuracy,
                clause.sup_pos, clause.ToString(*db).c_str());
    if (++shown == 6) break;
  }

  std::vector<ClassId> decision = model.Predict(*db, incoming);
  eval::ConfusionMatrix confusion(2);
  int flagged = 0;
  for (size_t i = 0; i < incoming.size(); ++i) {
    confusion.Add(db->labels()[incoming[i]], decision[i]);
    flagged += (decision[i] == 0);
  }
  std::printf("\nScored %zu incoming applications: %d flagged as likely "
              "defaults.\n",
              incoming.size(), flagged);
  std::printf("Against ground truth (0 = default, 1 = repaid):\n%s",
              confusion.ToString().c_str());
  std::printf("accuracy %.1f%%, default-class recall %.1f%%, precision "
              "%.1f%%\n",
              confusion.Accuracy() * 100, confusion.Recall(0) * 100,
              confusion.Precision(0) * 100);
  return 0;
}
