// Quickstart: build the paper's running example (Fig. 2 — a tiny Loan /
// Account banking database), train CrossMine on it, print the learned
// clauses, and classify a held-out loan.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/classifier.h"
#include "relational/database.h"

using namespace crossmine;

namespace {

// The sample database of Fig. 2/4, extended with a few more rows so the
// learner has something to chew on. Class 1 = loan paid on time.
Database BuildBankDatabase() {
  Database db;

  RelationSchema account_schema("Account");
  account_schema.AddPrimaryKey("account_id");
  AttrId frequency = account_schema.AddCategorical("frequency");
  AttrId date = account_schema.AddNumerical("date");
  RelId account_rel = db.AddRelation(std::move(account_schema));

  RelationSchema loan_schema("Loan");
  loan_schema.AddPrimaryKey("loan_id");
  AttrId loan_account = loan_schema.AddForeignKey("account_id", account_rel);
  AttrId amount = loan_schema.AddNumerical("amount");
  AttrId duration = loan_schema.AddNumerical("duration");
  AttrId payment = loan_schema.AddNumerical("payment");
  RelId loan_rel = db.AddRelation(std::move(loan_schema));
  db.SetTarget(loan_rel);

  Relation& account = db.mutable_relation(account_rel);
  int64_t monthly = account.InternCategory(frequency, "monthly");
  int64_t weekly = account.InternCategory(frequency, "weekly");
  struct AccountRow {
    int64_t freq;
    double date;
  };
  const AccountRow accounts[] = {
      {monthly, 960227}, {weekly, 950923}, {monthly, 941209},
      {weekly, 950101},  {monthly, 970512}, {weekly, 960318},
  };
  for (const AccountRow& row : accounts) {
    TupleId t = account.AddTuple();
    account.SetInt(t, 0, t);
    account.SetInt(t, frequency, row.freq);
    account.SetDouble(t, date, row.date);
  }

  Relation& loan = db.mutable_relation(loan_rel);
  struct LoanRow {
    int64_t account;
    double amount, duration, payment;
    ClassId paid;
  };
  // Pattern: loans on "monthly" accounts are repaid; "weekly" ones default.
  const LoanRow loans[] = {
      {0, 1000, 12, 120, 1},  {0, 4000, 12, 350, 1},  {1, 10000, 24, 500, 0},
      {2, 12000, 36, 400, 1}, {2, 2000, 24, 90, 1},   {3, 8000, 24, 380, 0},
      {4, 3000, 12, 270, 1},  {4, 9000, 48, 210, 1},  {5, 15000, 36, 460, 0},
      {5, 2500, 12, 230, 0},  {3, 6200, 24, 280, 0},  {1, 4400, 12, 390, 0},
  };
  std::vector<ClassId> labels;
  for (const LoanRow& row : loans) {
    TupleId t = loan.AddTuple();
    loan.SetInt(t, 0, t);
    loan.SetInt(t, loan_account, row.account);
    loan.SetDouble(t, amount, row.amount);
    loan.SetDouble(t, duration, row.duration);
    loan.SetDouble(t, payment, row.payment);
    labels.push_back(row.paid);
  }
  db.SetLabels(labels, /*num_classes=*/2);

  Status st = db.Finalize();
  CM_CHECK_MSG(st.ok(), st.ToString().c_str());
  return db;
}

}  // namespace

int main() {
  Database db = BuildBankDatabase();
  std::printf("Database: %d relations, %llu tuples total\n",
              db.num_relations(),
              static_cast<unsigned long long>(db.TotalTuples()));

  // Train on the first ten loans, hold out the last two.
  std::vector<TupleId> train, test;
  for (TupleId t = 0; t < db.target_relation().num_tuples(); ++t) {
    (t < 10 ? train : test).push_back(t);
  }

  CrossMineOptions options;
  options.min_foil_gain = 0.5;  // tiny dataset: accept small gains
  CrossMineClassifier model(options);
  Status st = model.Train(db, train);
  CM_CHECK_MSG(st.ok(), st.ToString().c_str());

  std::printf("\nLearned model:\n%s\n", model.ToString(db).c_str());

  std::vector<ClassId> pred = model.Predict(db, test);
  for (size_t i = 0; i < test.size(); ++i) {
    std::printf("loan %u: predicted=%s actual=%s\n", test[i],
                pred[i] == 1 ? "paid" : "default",
                db.labels()[test[i]] == 1 ? "paid" : "default");
  }
  return 0;
}
