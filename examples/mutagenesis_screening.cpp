// Compound screening on the Mutagenesis-style database (the paper's
// Table 3 scenario): learn clauses over molecules/atoms/bonds, compare
// CrossMine against the FOIL and TILDE baselines with ten-fold cross
// validation, and print TILDE's logical decision tree.
//
// Build & run:  cmake --build build && ./build/examples/mutagenesis_screening

#include <cstdio>

#include "baselines/foil.h"
#include "baselines/tilde.h"
#include "core/classifier.h"
#include "datagen/mutagenesis.h"
#include "eval/cross_validation.h"

using namespace crossmine;

int main() {
  StatusOr<Database> db = datagen::GenerateMutagenesisDatabase({});
  CM_CHECK_MSG(db.ok(), db.status().ToString().c_str());
  std::printf("Mutagenesis database: %llu tuples (%u molecules, %u atoms, "
              "%u bonds)\n\n",
              static_cast<unsigned long long>(db->TotalTuples()),
              db->target_relation().num_tuples(),
              db->relation(db->FindRelation("Atom")).num_tuples(),
              db->relation(db->FindRelation("Bond")).num_tuples());

  // CrossMine, ten-fold.
  CrossMineOptions cm_options;
  eval::CrossValResult cm = eval::CrossValidate(
      *db, [&] { return std::make_unique<CrossMineClassifier>(cm_options); },
      10, /*seed=*/1);
  std::printf("CrossMine: %.1f%% accuracy, %.2fs per fold\n",
              cm.mean_accuracy * 100, cm.mean_fold_seconds);

  // TILDE: small task, run it fully and show its tree.
  baselines::TildeOptions tilde_options;
  tilde_options.time_budget_seconds = 60;
  eval::CrossValResult tilde = eval::CrossValidate(
      *db,
      [&] { return std::make_unique<baselines::TildeClassifier>(tilde_options); },
      10, 1, /*fold_time_limit_seconds=*/60);
  std::printf("TILDE:     %.1f%% accuracy, %.2fs per fold%s\n",
              tilde.mean_accuracy * 100, tilde.mean_fold_seconds,
              tilde.truncated ? " (time-capped)" : "");

  // FOIL evaluates literals through physical joins over the atom/bond
  // relations — give it a budget.
  baselines::FoilOptions foil_options;
  foil_options.time_budget_seconds = 30;
  eval::CrossValResult foil = eval::CrossValidate(
      *db,
      [&] { return std::make_unique<baselines::FoilClassifier>(foil_options); },
      10, 1, /*fold_time_limit_seconds=*/30);
  std::printf("FOIL:      %.1f%% accuracy, %.2fs per fold%s\n",
              foil.mean_accuracy * 100, foil.mean_fold_seconds,
              foil.truncated ? " (time-capped)" : "");

  // Train CrossMine on everything and show what it discovered.
  std::vector<TupleId> all;
  for (TupleId t = 0; t < db->target_relation().num_tuples(); ++t) {
    all.push_back(t);
  }
  CrossMineClassifier model(cm_options);
  CM_CHECK(model.Train(*db, all).ok());
  std::printf("\nStrongest discovered clauses:\n");
  int shown = 0;
  for (const Clause& clause : model.clauses()) {
    if (clause.sup_pos < 20) continue;
    std::printf("  [acc=%.2f support=%g] %s\n", clause.accuracy,
                clause.sup_pos, clause.ToString(*db).c_str());
    if (++shown == 5) break;
  }
  return 0;
}
