// Custom-schema walkthrough: a telecom customer-churn scenario built from
// scratch with the public schema API, persisted to CSV, reloaded, and
// mined. Shows everything a downstream user needs to run CrossMine on
// their own multi-relational data:
//   1. declare relations with primary/foreign keys,
//   2. load tuples (here: generated; in practice from your own source),
//   3. persist it — CSV for diff-able text, `.cmdb` for fast binary
//      loads — through the unified storage API,
//   4. train, inspect clauses, and evaluate with cross-validation.
//
// Build & run:  cmake --build build && ./build/examples/churn_analysis

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "core/classifier.h"
#include "eval/cross_validation.h"
#include "relational/database.h"
#include "storage/storage.h"

using namespace crossmine;

namespace {

// Schema: Customer (target: churned?) -- Subscription -- Plan, plus
// SupportTicket referencing Customer.
Database BuildChurnDatabase(int num_customers, uint64_t seed) {
  Database db;

  RelationSchema plan_schema("Plan");
  plan_schema.AddPrimaryKey("plan_id");
  AttrId plan_tier = plan_schema.AddCategorical("tier");
  AttrId plan_price = plan_schema.AddNumerical("monthly_price");
  RelId plan_rel = db.AddRelation(std::move(plan_schema));

  RelationSchema customer_schema("Customer");
  customer_schema.AddPrimaryKey("customer_id");
  AttrId cust_region = customer_schema.AddCategorical("region");
  AttrId cust_tenure = customer_schema.AddNumerical("tenure_months");
  RelId customer_rel = db.AddRelation(std::move(customer_schema));

  RelationSchema sub_schema("Subscription");
  sub_schema.AddPrimaryKey("sub_id");
  AttrId sub_customer = sub_schema.AddForeignKey("customer_id", customer_rel);
  AttrId sub_plan = sub_schema.AddForeignKey("plan_id", plan_rel);
  AttrId sub_autopay = sub_schema.AddCategorical("autopay");
  RelId sub_rel = db.AddRelation(std::move(sub_schema));

  RelationSchema ticket_schema("SupportTicket");
  ticket_schema.AddPrimaryKey("ticket_id");
  AttrId ticket_customer =
      ticket_schema.AddForeignKey("customer_id", customer_rel);
  AttrId ticket_severity = ticket_schema.AddCategorical("severity");
  AttrId ticket_wait = ticket_schema.AddNumerical("hours_to_resolve");
  RelId ticket_rel = db.AddRelation(std::move(ticket_schema));

  db.SetTarget(customer_rel);

  Rng rng(seed);
  Relation& plan = db.mutable_relation(plan_rel);
  const char* tiers[] = {"basic", "plus", "premium"};
  for (int i = 0; i < 6; ++i) {
    TupleId p = plan.AddTuple();
    plan.SetInt(p, 0, p);
    plan.SetInt(p, plan_tier, plan.InternCategory(plan_tier, tiers[i % 3]));
    plan.SetDouble(p, plan_price, 10.0 + 15.0 * (i % 3) +
                                      rng.UniformDouble(0, 5));
  }

  Relation& customer = db.mutable_relation(customer_rel);
  Relation& sub = db.mutable_relation(sub_rel);
  Relation& ticket = db.mutable_relation(ticket_rel);
  std::vector<ClassId> labels;
  for (int i = 0; i < num_customers; ++i) {
    TupleId c = customer.AddTuple();
    customer.SetInt(c, 0, c);
    customer.SetInt(
        c, cust_region,
        customer.InternCategory(cust_region,
                                "region" + std::to_string(rng.Uniform(4))));
    double tenure = rng.UniformDouble(1, 72);
    customer.SetDouble(c, cust_tenure, tenure);

    TupleId s = sub.AddTuple();
    int64_t chosen_plan = static_cast<int64_t>(rng.Uniform(6));
    sub.SetInt(s, 0, s);
    sub.SetInt(s, sub_customer, c);
    sub.SetInt(s, sub_plan, chosen_plan);
    bool autopay = rng.Bernoulli(0.6);
    sub.SetInt(s, sub_autopay,
               sub.InternCategory(sub_autopay, autopay ? "yes" : "no"));

    double worst_wait = 0;
    int64_t tickets = rng.ExponentialAtLeast(1.2, 0);
    for (int64_t k = 0; k < tickets; ++k) {
      TupleId t = ticket.AddTuple();
      ticket.SetInt(t, 0, t);
      ticket.SetInt(t, ticket_customer, c);
      ticket.SetInt(t, ticket_severity,
                    ticket.InternCategory(
                        ticket_severity,
                        rng.Bernoulli(0.25) ? "critical" : "routine"));
      double wait = rng.UniformDouble(1, 120);
      ticket.SetDouble(t, ticket_wait, wait);
      worst_wait = std::max(worst_wait, wait);
    }

    // Ground truth: churn if on an expensive plan without autopay, or a
    // support ticket festered for >90h, or brand-new basic-tier customer.
    bool expensive = plan.Double(static_cast<TupleId>(chosen_plan),
                                 plan_price) > 35.0;
    bool churn = (expensive && !autopay) || worst_wait > 90.0 ||
                 (tenure < 6 && !autopay);
    if (rng.Bernoulli(0.06)) churn = !churn;  // label noise
    labels.push_back(churn ? 1 : 0);
  }
  db.SetLabels(labels, 2);
  Status st = db.Finalize();
  CM_CHECK_MSG(st.ok(), st.ToString().c_str());
  return db;
}

}  // namespace

int main() {
  Database db = BuildChurnDatabase(/*num_customers=*/800, /*seed=*/99);
  std::printf("Churn database: %d relations, %llu tuples\n",
              db.num_relations(),
              static_cast<unsigned long long>(db.TotalTuples()));

  // Persist and reload through the unified storage API. A directory path
  // means CSV + schema manifest (diff-able, editable with external tools);
  // a `.cmdb` path means the binary columnar format (mmap-backed, the fast
  // path for repeated runs). OpenDatabase sniffs the format on load.
  std::string dir = "churn_dataset";
  Status st = storage::SaveDatabase(db, dir);
  CM_CHECK_MSG(st.ok(), st.ToString().c_str());
  StatusOr<Database> loaded = storage::OpenDatabase(dir);
  CM_CHECK_MSG(loaded.ok(), loaded.status().ToString().c_str());
  std::printf("Round-tripped through %s/ (schema.txt + one CSV per "
              "relation)\n",
              dir.c_str());

  std::string cmdb = "churn_dataset.cmdb";
  st = storage::SaveDatabase(db, cmdb);
  CM_CHECK_MSG(st.ok(), st.ToString().c_str());
  StatusOr<Database> fast = storage::OpenDatabase(cmdb);
  CM_CHECK_MSG(fast.ok(), fast.status().ToString().c_str());
  std::printf("Round-tripped through %s (binary columnar)\n\n",
              cmdb.c_str());

  // Mine churn rules with ten-fold cross validation.
  CrossMineOptions options;  // defaults: all literal families
  eval::CrossValResult cv = eval::CrossValidate(
      *loaded,
      [&] { return std::make_unique<CrossMineClassifier>(options); }, 10, 1);
  std::printf("CrossMine 10-fold accuracy: %.1f%% (%.2fs per fold)\n\n",
              cv.mean_accuracy * 100, cv.mean_fold_seconds);

  std::vector<TupleId> all;
  for (TupleId t = 0; t < loaded->target_relation().num_tuples(); ++t) {
    all.push_back(t);
  }
  CrossMineClassifier model(options);
  CM_CHECK(model.Train(*loaded, all).ok());
  std::printf("Churn-driver clauses (class 1 = churned):\n");
  int shown = 0;
  for (const Clause& clause : model.clauses()) {
    if (clause.predicted_class != 1 || clause.sup_pos < 15) continue;
    std::printf("  [acc=%.2f support=%g] %s\n", clause.accuracy,
                clause.sup_pos, clause.ToString(*loaded).c_str());
    if (++shown == 5) break;
  }
  return 0;
}
