# Empty compiler generated dependencies file for table2_financial.
# This may be replaced when dependencies are built.
