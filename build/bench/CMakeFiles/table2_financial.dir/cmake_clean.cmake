file(REMOVE_RECURSE
  "CMakeFiles/table2_financial.dir/table2_financial.cc.o"
  "CMakeFiles/table2_financial.dir/table2_financial.cc.o.d"
  "table2_financial"
  "table2_financial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_financial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
