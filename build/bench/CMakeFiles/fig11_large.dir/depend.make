# Empty dependencies file for fig11_large.
# This may be replaced when dependencies are built.
