file(REMOVE_RECURSE
  "CMakeFiles/fig11_large.dir/fig11_large.cc.o"
  "CMakeFiles/fig11_large.dir/fig11_large.cc.o.d"
  "fig11_large"
  "fig11_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
