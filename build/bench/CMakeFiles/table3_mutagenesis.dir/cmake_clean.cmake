file(REMOVE_RECURSE
  "CMakeFiles/table3_mutagenesis.dir/table3_mutagenesis.cc.o"
  "CMakeFiles/table3_mutagenesis.dir/table3_mutagenesis.cc.o.d"
  "table3_mutagenesis"
  "table3_mutagenesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_mutagenesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
