# Empty compiler generated dependencies file for table3_mutagenesis.
# This may be replaced when dependencies are built.
