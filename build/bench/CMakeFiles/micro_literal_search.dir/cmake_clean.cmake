file(REMOVE_RECURSE
  "CMakeFiles/micro_literal_search.dir/micro_literal_search.cc.o"
  "CMakeFiles/micro_literal_search.dir/micro_literal_search.cc.o.d"
  "micro_literal_search"
  "micro_literal_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_literal_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
