# Empty compiler generated dependencies file for micro_literal_search.
# This may be replaced when dependencies are built.
