# Empty compiler generated dependencies file for fig9_relations.
# This may be replaced when dependencies are built.
