file(REMOVE_RECURSE
  "CMakeFiles/fig9_relations.dir/fig9_relations.cc.o"
  "CMakeFiles/fig9_relations.dir/fig9_relations.cc.o.d"
  "fig9_relations"
  "fig9_relations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_relations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
