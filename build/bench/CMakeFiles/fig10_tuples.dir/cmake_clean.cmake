file(REMOVE_RECURSE
  "CMakeFiles/fig10_tuples.dir/fig10_tuples.cc.o"
  "CMakeFiles/fig10_tuples.dir/fig10_tuples.cc.o.d"
  "fig10_tuples"
  "fig10_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
