# Empty compiler generated dependencies file for fig10_tuples.
# This may be replaced when dependencies are built.
