file(REMOVE_RECURSE
  "CMakeFiles/fig12_fkeys.dir/fig12_fkeys.cc.o"
  "CMakeFiles/fig12_fkeys.dir/fig12_fkeys.cc.o.d"
  "fig12_fkeys"
  "fig12_fkeys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_fkeys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
