# Empty dependencies file for fig12_fkeys.
# This may be replaced when dependencies are built.
