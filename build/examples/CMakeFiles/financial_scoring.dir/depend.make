# Empty dependencies file for financial_scoring.
# This may be replaced when dependencies are built.
