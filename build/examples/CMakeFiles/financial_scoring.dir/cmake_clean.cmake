file(REMOVE_RECURSE
  "CMakeFiles/financial_scoring.dir/financial_scoring.cpp.o"
  "CMakeFiles/financial_scoring.dir/financial_scoring.cpp.o.d"
  "financial_scoring"
  "financial_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/financial_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
