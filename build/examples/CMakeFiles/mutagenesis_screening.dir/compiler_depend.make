# Empty compiler generated dependencies file for mutagenesis_screening.
# This may be replaced when dependencies are built.
