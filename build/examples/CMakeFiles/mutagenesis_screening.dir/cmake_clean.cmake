file(REMOVE_RECURSE
  "CMakeFiles/mutagenesis_screening.dir/mutagenesis_screening.cpp.o"
  "CMakeFiles/mutagenesis_screening.dir/mutagenesis_screening.cpp.o.d"
  "mutagenesis_screening"
  "mutagenesis_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutagenesis_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
