file(REMOVE_RECURSE
  "CMakeFiles/churn_analysis.dir/churn_analysis.cpp.o"
  "CMakeFiles/churn_analysis.dir/churn_analysis.cpp.o.d"
  "churn_analysis"
  "churn_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
