# Empty dependencies file for churn_analysis.
# This may be replaced when dependencies are built.
