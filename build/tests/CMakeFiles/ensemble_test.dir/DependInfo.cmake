
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ensemble_test.cc" "tests/CMakeFiles/ensemble_test.dir/ensemble_test.cc.o" "gcc" "tests/CMakeFiles/ensemble_test.dir/ensemble_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/crossmine_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/crossmine_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/crossmine_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/crossmine_core.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/crossmine_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/crossmine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
