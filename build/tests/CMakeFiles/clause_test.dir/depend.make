# Empty dependencies file for clause_test.
# This may be replaced when dependencies are built.
