# Empty dependencies file for foil_test.
# This may be replaced when dependencies are built.
