file(REMOVE_RECURSE
  "CMakeFiles/foil_test.dir/foil_test.cc.o"
  "CMakeFiles/foil_test.dir/foil_test.cc.o.d"
  "foil_test"
  "foil_test.pdb"
  "foil_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
