# Empty dependencies file for clause_eval_test.
# This may be replaced when dependencies are built.
