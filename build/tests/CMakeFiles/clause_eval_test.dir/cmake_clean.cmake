file(REMOVE_RECURSE
  "CMakeFiles/clause_eval_test.dir/clause_eval_test.cc.o"
  "CMakeFiles/clause_eval_test.dir/clause_eval_test.cc.o.d"
  "clause_eval_test"
  "clause_eval_test.pdb"
  "clause_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clause_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
