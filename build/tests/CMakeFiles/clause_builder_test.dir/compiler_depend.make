# Empty compiler generated dependencies file for clause_builder_test.
# This may be replaced when dependencies are built.
