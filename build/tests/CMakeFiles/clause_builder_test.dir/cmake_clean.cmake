file(REMOVE_RECURSE
  "CMakeFiles/clause_builder_test.dir/clause_builder_test.cc.o"
  "CMakeFiles/clause_builder_test.dir/clause_builder_test.cc.o.d"
  "clause_builder_test"
  "clause_builder_test.pdb"
  "clause_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clause_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
