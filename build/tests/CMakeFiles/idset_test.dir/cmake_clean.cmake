file(REMOVE_RECURSE
  "CMakeFiles/idset_test.dir/idset_test.cc.o"
  "CMakeFiles/idset_test.dir/idset_test.cc.o.d"
  "idset_test"
  "idset_test.pdb"
  "idset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
