# Empty dependencies file for idset_test.
# This may be replaced when dependencies are built.
