# Empty dependencies file for tilde_test.
# This may be replaced when dependencies are built.
