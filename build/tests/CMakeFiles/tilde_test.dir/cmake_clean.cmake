file(REMOVE_RECURSE
  "CMakeFiles/tilde_test.dir/tilde_test.cc.o"
  "CMakeFiles/tilde_test.dir/tilde_test.cc.o.d"
  "tilde_test"
  "tilde_test.pdb"
  "tilde_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tilde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
