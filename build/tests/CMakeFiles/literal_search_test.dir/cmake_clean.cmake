file(REMOVE_RECURSE
  "CMakeFiles/literal_search_test.dir/literal_search_test.cc.o"
  "CMakeFiles/literal_search_test.dir/literal_search_test.cc.o.d"
  "literal_search_test"
  "literal_search_test.pdb"
  "literal_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/literal_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
