# Empty compiler generated dependencies file for foil_gain_test.
# This may be replaced when dependencies are built.
