file(REMOVE_RECURSE
  "CMakeFiles/foil_gain_test.dir/foil_gain_test.cc.o"
  "CMakeFiles/foil_gain_test.dir/foil_gain_test.cc.o.d"
  "foil_gain_test"
  "foil_gain_test.pdb"
  "foil_gain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foil_gain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
