# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/relation_test[1]_include.cmake")
include("/root/repo/build/tests/database_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/idset_test[1]_include.cmake")
include("/root/repo/build/tests/propagation_test[1]_include.cmake")
include("/root/repo/build/tests/foil_gain_test[1]_include.cmake")
include("/root/repo/build/tests/constraint_eval_test[1]_include.cmake")
include("/root/repo/build/tests/literal_search_test[1]_include.cmake")
include("/root/repo/build/tests/clause_test[1]_include.cmake")
include("/root/repo/build/tests/clause_eval_test[1]_include.cmake")
include("/root/repo/build/tests/sampling_test[1]_include.cmake")
include("/root/repo/build/tests/classifier_test[1]_include.cmake")
include("/root/repo/build/tests/bindings_test[1]_include.cmake")
include("/root/repo/build/tests/foil_test[1]_include.cmake")
include("/root/repo/build/tests/tilde_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/model_io_test[1]_include.cmake")
include("/root/repo/build/tests/clause_builder_test[1]_include.cmake")
include("/root/repo/build/tests/options_test[1]_include.cmake")
include("/root/repo/build/tests/ensemble_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
