file(REMOVE_RECURSE
  "CMakeFiles/crossmine_cli.dir/crossmine_cli.cc.o"
  "CMakeFiles/crossmine_cli.dir/crossmine_cli.cc.o.d"
  "crossmine"
  "crossmine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossmine_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
