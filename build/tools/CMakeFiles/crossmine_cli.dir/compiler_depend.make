# Empty compiler generated dependencies file for crossmine_cli.
# This may be replaced when dependencies are built.
