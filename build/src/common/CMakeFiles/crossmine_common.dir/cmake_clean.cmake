file(REMOVE_RECURSE
  "CMakeFiles/crossmine_common.dir/random.cc.o"
  "CMakeFiles/crossmine_common.dir/random.cc.o.d"
  "CMakeFiles/crossmine_common.dir/status.cc.o"
  "CMakeFiles/crossmine_common.dir/status.cc.o.d"
  "CMakeFiles/crossmine_common.dir/string_util.cc.o"
  "CMakeFiles/crossmine_common.dir/string_util.cc.o.d"
  "libcrossmine_common.a"
  "libcrossmine_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossmine_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
