# Empty dependencies file for crossmine_common.
# This may be replaced when dependencies are built.
