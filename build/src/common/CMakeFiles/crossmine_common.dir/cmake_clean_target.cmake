file(REMOVE_RECURSE
  "libcrossmine_common.a"
)
