file(REMOVE_RECURSE
  "CMakeFiles/crossmine_eval.dir/cross_validation.cc.o"
  "CMakeFiles/crossmine_eval.dir/cross_validation.cc.o.d"
  "CMakeFiles/crossmine_eval.dir/metrics.cc.o"
  "CMakeFiles/crossmine_eval.dir/metrics.cc.o.d"
  "libcrossmine_eval.a"
  "libcrossmine_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossmine_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
