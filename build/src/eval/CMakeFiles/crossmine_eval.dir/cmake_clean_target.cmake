file(REMOVE_RECURSE
  "libcrossmine_eval.a"
)
