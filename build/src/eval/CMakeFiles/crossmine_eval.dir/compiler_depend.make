# Empty compiler generated dependencies file for crossmine_eval.
# This may be replaced when dependencies are built.
