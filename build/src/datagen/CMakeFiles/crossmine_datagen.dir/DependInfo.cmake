
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/financial.cc" "src/datagen/CMakeFiles/crossmine_datagen.dir/financial.cc.o" "gcc" "src/datagen/CMakeFiles/crossmine_datagen.dir/financial.cc.o.d"
  "/root/repo/src/datagen/mutagenesis.cc" "src/datagen/CMakeFiles/crossmine_datagen.dir/mutagenesis.cc.o" "gcc" "src/datagen/CMakeFiles/crossmine_datagen.dir/mutagenesis.cc.o.d"
  "/root/repo/src/datagen/synthetic.cc" "src/datagen/CMakeFiles/crossmine_datagen.dir/synthetic.cc.o" "gcc" "src/datagen/CMakeFiles/crossmine_datagen.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/crossmine_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/crossmine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
