file(REMOVE_RECURSE
  "CMakeFiles/crossmine_datagen.dir/financial.cc.o"
  "CMakeFiles/crossmine_datagen.dir/financial.cc.o.d"
  "CMakeFiles/crossmine_datagen.dir/mutagenesis.cc.o"
  "CMakeFiles/crossmine_datagen.dir/mutagenesis.cc.o.d"
  "CMakeFiles/crossmine_datagen.dir/synthetic.cc.o"
  "CMakeFiles/crossmine_datagen.dir/synthetic.cc.o.d"
  "libcrossmine_datagen.a"
  "libcrossmine_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossmine_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
