file(REMOVE_RECURSE
  "libcrossmine_datagen.a"
)
