# Empty compiler generated dependencies file for crossmine_datagen.
# This may be replaced when dependencies are built.
