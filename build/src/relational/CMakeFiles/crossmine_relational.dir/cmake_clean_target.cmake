file(REMOVE_RECURSE
  "libcrossmine_relational.a"
)
