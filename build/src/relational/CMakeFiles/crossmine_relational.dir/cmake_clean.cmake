file(REMOVE_RECURSE
  "CMakeFiles/crossmine_relational.dir/csv.cc.o"
  "CMakeFiles/crossmine_relational.dir/csv.cc.o.d"
  "CMakeFiles/crossmine_relational.dir/database.cc.o"
  "CMakeFiles/crossmine_relational.dir/database.cc.o.d"
  "CMakeFiles/crossmine_relational.dir/relation.cc.o"
  "CMakeFiles/crossmine_relational.dir/relation.cc.o.d"
  "CMakeFiles/crossmine_relational.dir/schema.cc.o"
  "CMakeFiles/crossmine_relational.dir/schema.cc.o.d"
  "libcrossmine_relational.a"
  "libcrossmine_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossmine_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
