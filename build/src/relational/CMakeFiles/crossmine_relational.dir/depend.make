# Empty dependencies file for crossmine_relational.
# This may be replaced when dependencies are built.
