file(REMOVE_RECURSE
  "libcrossmine_core.a"
)
