# Empty compiler generated dependencies file for crossmine_core.
# This may be replaced when dependencies are built.
