file(REMOVE_RECURSE
  "CMakeFiles/crossmine_core.dir/classifier.cc.o"
  "CMakeFiles/crossmine_core.dir/classifier.cc.o.d"
  "CMakeFiles/crossmine_core.dir/clause_builder.cc.o"
  "CMakeFiles/crossmine_core.dir/clause_builder.cc.o.d"
  "CMakeFiles/crossmine_core.dir/clause_eval.cc.o"
  "CMakeFiles/crossmine_core.dir/clause_eval.cc.o.d"
  "CMakeFiles/crossmine_core.dir/constraint_eval.cc.o"
  "CMakeFiles/crossmine_core.dir/constraint_eval.cc.o.d"
  "CMakeFiles/crossmine_core.dir/ensemble.cc.o"
  "CMakeFiles/crossmine_core.dir/ensemble.cc.o.d"
  "CMakeFiles/crossmine_core.dir/idset.cc.o"
  "CMakeFiles/crossmine_core.dir/idset.cc.o.d"
  "CMakeFiles/crossmine_core.dir/literal.cc.o"
  "CMakeFiles/crossmine_core.dir/literal.cc.o.d"
  "CMakeFiles/crossmine_core.dir/literal_search.cc.o"
  "CMakeFiles/crossmine_core.dir/literal_search.cc.o.d"
  "CMakeFiles/crossmine_core.dir/model_io.cc.o"
  "CMakeFiles/crossmine_core.dir/model_io.cc.o.d"
  "CMakeFiles/crossmine_core.dir/propagation.cc.o"
  "CMakeFiles/crossmine_core.dir/propagation.cc.o.d"
  "CMakeFiles/crossmine_core.dir/sampling.cc.o"
  "CMakeFiles/crossmine_core.dir/sampling.cc.o.d"
  "libcrossmine_core.a"
  "libcrossmine_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossmine_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
