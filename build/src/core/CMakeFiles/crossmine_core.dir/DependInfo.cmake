
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classifier.cc" "src/core/CMakeFiles/crossmine_core.dir/classifier.cc.o" "gcc" "src/core/CMakeFiles/crossmine_core.dir/classifier.cc.o.d"
  "/root/repo/src/core/clause_builder.cc" "src/core/CMakeFiles/crossmine_core.dir/clause_builder.cc.o" "gcc" "src/core/CMakeFiles/crossmine_core.dir/clause_builder.cc.o.d"
  "/root/repo/src/core/clause_eval.cc" "src/core/CMakeFiles/crossmine_core.dir/clause_eval.cc.o" "gcc" "src/core/CMakeFiles/crossmine_core.dir/clause_eval.cc.o.d"
  "/root/repo/src/core/constraint_eval.cc" "src/core/CMakeFiles/crossmine_core.dir/constraint_eval.cc.o" "gcc" "src/core/CMakeFiles/crossmine_core.dir/constraint_eval.cc.o.d"
  "/root/repo/src/core/ensemble.cc" "src/core/CMakeFiles/crossmine_core.dir/ensemble.cc.o" "gcc" "src/core/CMakeFiles/crossmine_core.dir/ensemble.cc.o.d"
  "/root/repo/src/core/idset.cc" "src/core/CMakeFiles/crossmine_core.dir/idset.cc.o" "gcc" "src/core/CMakeFiles/crossmine_core.dir/idset.cc.o.d"
  "/root/repo/src/core/literal.cc" "src/core/CMakeFiles/crossmine_core.dir/literal.cc.o" "gcc" "src/core/CMakeFiles/crossmine_core.dir/literal.cc.o.d"
  "/root/repo/src/core/literal_search.cc" "src/core/CMakeFiles/crossmine_core.dir/literal_search.cc.o" "gcc" "src/core/CMakeFiles/crossmine_core.dir/literal_search.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/crossmine_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/crossmine_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/propagation.cc" "src/core/CMakeFiles/crossmine_core.dir/propagation.cc.o" "gcc" "src/core/CMakeFiles/crossmine_core.dir/propagation.cc.o.d"
  "/root/repo/src/core/sampling.cc" "src/core/CMakeFiles/crossmine_core.dir/sampling.cc.o" "gcc" "src/core/CMakeFiles/crossmine_core.dir/sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/crossmine_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/crossmine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
