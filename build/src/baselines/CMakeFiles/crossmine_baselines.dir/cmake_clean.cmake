file(REMOVE_RECURSE
  "CMakeFiles/crossmine_baselines.dir/bindings.cc.o"
  "CMakeFiles/crossmine_baselines.dir/bindings.cc.o.d"
  "CMakeFiles/crossmine_baselines.dir/foil.cc.o"
  "CMakeFiles/crossmine_baselines.dir/foil.cc.o.d"
  "CMakeFiles/crossmine_baselines.dir/tilde.cc.o"
  "CMakeFiles/crossmine_baselines.dir/tilde.cc.o.d"
  "libcrossmine_baselines.a"
  "libcrossmine_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossmine_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
