# Empty dependencies file for crossmine_baselines.
# This may be replaced when dependencies are built.
