file(REMOVE_RECURSE
  "libcrossmine_baselines.a"
)
