
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bindings.cc" "src/baselines/CMakeFiles/crossmine_baselines.dir/bindings.cc.o" "gcc" "src/baselines/CMakeFiles/crossmine_baselines.dir/bindings.cc.o.d"
  "/root/repo/src/baselines/foil.cc" "src/baselines/CMakeFiles/crossmine_baselines.dir/foil.cc.o" "gcc" "src/baselines/CMakeFiles/crossmine_baselines.dir/foil.cc.o.d"
  "/root/repo/src/baselines/tilde.cc" "src/baselines/CMakeFiles/crossmine_baselines.dir/tilde.cc.o" "gcc" "src/baselines/CMakeFiles/crossmine_baselines.dir/tilde.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/crossmine_core.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/crossmine_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/crossmine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
